#!/usr/bin/env python
"""Parallel backup: reproduce the paper's multi-tape scaling result live.

Sweeps 1, 2, and 4 DLT-7000 drives over the same aged volume and prints
the throughput curve for both strategies — the paper's Section 5.2:

* logical dump "cannot use multiple tape devices in parallel for a single
  dump due to the strictly linear format", so the volume is split into
  qtrees and dumped as concurrent jobs;
* image dump stripes blocks across the drives natively;
* physical scales almost linearly; logical saturates on CPU and scattered
  disk reads.

Run:  python examples/parallel_backup.py
"""

from repro.backup.jobs import parallel_image_dump, parallel_logical_dump
from repro.backup.logical.dump import STAGE_FILES
from repro.backup.logical.dumpdates import DumpDates
from repro.backup.physical.dump import STAGE_BLOCKS
from repro.bench.configs import EliotConfig, build_home_env
from repro.perf import TimedRun
from repro.units import MB

SCALE = 2000


def main():
    print("ndrives | logical MB/s (GB/h/tape) | physical MB/s (GB/h/tape)")
    print("--------+--------------------------+--------------------------")
    for ndrives in (1, 2, 4):
        env = build_home_env(EliotConfig(scale=SCALE, qtrees=ndrives,
                                         seed=13))
        fs = env.home_fs
        costs = env.config.cost_model()
        data_bytes = env.data_bytes()

        # Logical: one dump per qtree, one drive each.
        run = TimedRun()
        results = parallel_logical_dump(
            run, fs, env.qtree_paths, env.new_drives(ndrives, "L"),
            dumpdates=DumpDates(), costs=costs,
        )
        run.run()
        stages = [r.stages[STAGE_FILES] for r in results.values()]
        span = max(s.end for s in stages) - min(s.start for s in stages)
        logical_rate = sum(s.tape_bytes for s in stages) / MB / span

        # Physical: one image striped over all drives.
        run = TimedRun()
        presult = parallel_image_dump(
            run, fs, env.new_drives(ndrives, "P"),
            snapshot_name="sweep.%d" % ndrives, costs=costs,
        )
        run.run()
        pstage = presult.stages[STAGE_BLOCKS]
        physical_rate = pstage.tape_bytes / MB / pstage.elapsed
        fs.snapshot_delete("sweep.%d" % ndrives)

        def per_tape(rate):
            return rate * 3600 / 1024 / ndrives

        print("   %d    |        %6.2f (%5.1f)    |        %6.2f (%5.1f)"
              % (ndrives, logical_rate, per_tape(logical_rate),
                 physical_rate, per_tape(physical_rate)))

    print()
    print("Paper's 4-drive summary: logical 69.6 GB/h (17.4/tape),"
          " physical 110 GB/h (27.6/tape).")
    print("The shape to notice: physical scales nearly linearly;"
          " logical's per-tape efficiency decays as the CPU saturates and"
          " the inode-order reads scatter.")


if __name__ == "__main__":
    main()
