#!/usr/bin/env python
"""Stupidity recovery: bring back accidentally deleted files.

The paper's second restore scenario: "requests to recover a small set of
files that have been 'accidentally' deleted or overwritten, usually by
user error" — and its two remedies:

*   **Snapshots** — "allowing users to recover their own files" without
    touching tape at all (if a recent snapshot still holds the file).
*   **Selective logical restore** — "a logical restore can locate the
    file on tape, and restore only that file", using restore's
    desiccated directory file to ``namei`` straight to the victim.

The example also shows why physical backup *cannot* do this: "the entire
file system must be recreated before the individual disk blocks that make
up the file being requested can be identified."

Run:  python examples/stupidity_recovery.py
"""

from repro.backup import (
    DumpDates,
    LogicalDump,
    LogicalRestore,
    drain_engine,
)
from repro.bench.configs import EliotConfig, build_home_env
from repro.perf import TimedRun
from repro.units import fmt_bytes, fmt_duration


def main():
    print("Building the office file server...")
    env = build_home_env(EliotConfig(scale=4000, seed=11))
    fs = env.home_fs
    costs = env.config.cost_model()

    # Friday night: the scheduled level-0 dump and an hourly snapshot.
    tape = env.new_drive("friday-level0")
    drain_engine(LogicalDump(fs, tape, level=0, dumpdates=DumpDates(),
                             costs=costs).run())
    fs.snapshot_create("hourly.0")
    print("Friday level-0 dump on tape; hourly snapshot taken.")

    # Pick a victim file with some content.
    victim = next(
        path for path, inode in fs.walk("/")
        if inode.is_regular and inode.size > 100000
    )
    original = fs.read_file(victim)
    print("\nMonday 09:12 — user deletes %s (%s) and its whole directory's"
          " siblings look scary too" % (victim, fmt_bytes(len(original))))
    fs.unlink(victim)
    assert not fs.exists(victim)

    # ---- Remedy 1: the snapshot still has it ---------------------------
    snapshot = fs.snapshot_view("hourly.0")
    recovered = snapshot.read_file(victim)
    assert recovered == original
    print("\nRemedy 1 (snapshot): file read straight out of 'hourly.0' —"
          " no tape, no administrator: %s recovered." % fmt_bytes(len(recovered)))
    # Copy it back into the live file system.
    fs.create(victim, recovered)
    assert fs.read_file(victim) == original
    fs.unlink(victim)  # (delete again, to demo the tape path)

    # ---- Remedy 2: selective restore from the level-0 tape --------------
    run = TimedRun()
    result = run.add_job(
        "selective",
        LogicalRestore(fs, tape, select=[victim], costs=costs).run(),
    )
    run.run()
    assert fs.read_file(victim) == original
    print("\nRemedy 2 (tape): selective restore walked the tape's directory"
          " records, extracted exactly 1 of %d files, and skipped %d others."
          % (result.data.files + result.data.skipped, result.data.skipped))
    print("The whole tape still streamed past the head (%s read) — "
          "%s in the model — but nothing else touched the file system."
          % (fmt_bytes(result.tape_bytes), fmt_duration(result.elapsed)))

    print("\nWhy physical backup can't do this: an image stream is raw"
          " (address, block) pairs; without rebuilding the whole volume"
          " there is no way to know which blocks belong to %s." % victim)


if __name__ == "__main__":
    main()
