#!/usr/bin/env python
"""Makeshift HSM: nightly dump/restore replication to a cheaper tier.

From the paper's introduction: "some companies are using dump/restore to
implement a kind of makeshift Hierarchical Storage Management (HSM)
system where high performance RAID systems nightly replicate data on
lower cost backup file servers, which eventually backup data to tape."

This example builds exactly that three-tier pipeline:

    primary filer  --nightly dump/restore-->  cheap file server
                                                   |
                                                weekly dump to tape

The nightly hop uses *incremental* logical dumps (level = day of week),
so only the day's churn crosses the wire; the weekly tape dump runs on
the cheap tier where it cannot disturb primary users.

Run:  python examples/hsm_replication.py
"""

from repro.backup import (
    DumpDates,
    LogicalDump,
    LogicalRestore,
    drain_engine,
    verify_trees,
)
from repro.bench.configs import EliotConfig, build_home_env
from repro.raid.layout import make_geometry
from repro.raid.volume import RaidVolume
from repro.units import fmt_bytes
from repro.wafl.filesystem import WaflFilesystem
from repro.workload import MutationConfig, apply_mutations


def main():
    print("Tier 1: the primary filer (fast RAID, busy users)")
    env = build_home_env(EliotConfig(scale=4000, seed=21))
    primary = env.home_fs
    tree = env.home_tree

    print("Tier 2: the low-cost backup file server (fewer, bigger disks)")
    cheap_volume = RaidVolume(
        make_geometry(ngroups=1, ndata_disks=6, blocks_per_disk=4000),
        name="cheap-tier",
    )
    cheap = WaflFilesystem.format(cheap_volume)

    dumpdates = DumpDates()
    symtab = None

    # ---- Sunday night: the full replication ----------------------------
    pipe = env.new_drive("pipe-sun")  # the "wire" between tiers
    full = drain_engine(
        LogicalDump(primary, pipe, level=0, dumpdates=dumpdates).run()
    )
    symtab = drain_engine(LogicalRestore(cheap, pipe).run()).symtab
    print("\nSunday: full replication of %d files (%s) to the cheap tier"
          % (full.files, fmt_bytes(full.bytes_to_tape)))

    # ---- Monday..Wednesday: nightly incrementals ------------------------
    for day, name in enumerate(["Monday", "Tuesday", "Wednesday"], start=1):
        apply_mutations(primary, tree,
                        MutationConfig(seed=50 + day, modify_fraction=0.05,
                                       delete_fraction=0.01,
                                       create_fraction=0.02,
                                       rename_fraction=0.01))
        pipe = env.new_drive("pipe-%d" % day)
        nightly = drain_engine(
            LogicalDump(primary, pipe, level=day, dumpdates=dumpdates).run()
        )
        symtab = drain_engine(
            LogicalRestore(cheap, pipe, symtab=symtab).run()
        ).symtab
        print("%s: nightly level-%d shipped %d changed files (%s — %.1f%%"
              " of the full)"
              % (name, day, nightly.files, fmt_bytes(nightly.bytes_to_tape),
                 100.0 * nightly.bytes_to_tape / full.bytes_to_tape))

    diffs = verify_trees(primary, cheap, check_mtime=True)
    assert not diffs, diffs[:5]
    print("\nCheap tier verified identical to the primary after 3 nights.")

    # ---- Weekly: the cheap tier goes to tape, primary undisturbed -------
    archive = env.new_drive("weekly-tape")
    weekly = drain_engine(
        LogicalDump(cheap, archive, level=0, dumpdates=DumpDates()).run()
    )
    print("\nWeekly tape archive cut from the CHEAP tier: %d files, %s"
          % (weekly.files, fmt_bytes(weekly.bytes_to_tape)))
    print("The primary filer served users through all of it; its only "
          "backup load was the nightly incremental dumps.")

    # Prove the archive chain is sound: restore the tape somewhere new.
    scratch = WaflFilesystem.format(RaidVolume(
        make_geometry(ngroups=2, ndata_disks=3, blocks_per_disk=4000),
        name="scratch",
    ))
    drain_engine(LogicalRestore(scratch, archive).run())
    diffs = verify_trees(primary, scratch, check_mtime=True)
    assert not diffs, diffs[:5]
    print("Tape archive restored on scratch hardware: identical to the"
          " primary. The HSM chain is sound end to end.")


if __name__ == "__main__":
    main()
