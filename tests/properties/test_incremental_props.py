"""Adversarial property test: random mutation sequences through
incremental dump/restore chains must always reconcile exactly."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backup import (
    DumpDates,
    LogicalDump,
    LogicalRestore,
    drain_engine,
    verify_trees,
)
from repro.wafl.fsck import fsck

from tests.conftest import make_drive, make_fs


def mutate_randomly(fs, rng, paths, dirs, ops=6):
    """Apply a handful of random namespace/data mutations."""
    for _ in range(ops):
        choice = rng.random()
        if choice < 0.25 or not paths:
            # Create (sometimes inside a subdirectory).
            parent = rng.choice(dirs)
            name = "%s/n%d" % (parent.rstrip("/"), rng.randrange(10**6))
            if not fs.exists(name):
                fs.create(name, bytes([rng.randrange(256)]) * rng.randrange(0, 9000))
                paths.append(name)
        elif choice < 0.40:
            victim = paths.pop(rng.randrange(len(paths)))
            if fs.exists(victim):
                fs.unlink(victim)
        elif choice < 0.55:
            path = rng.choice(paths)
            if fs.exists(path):
                fs.write_file(path, b"M" * rng.randrange(1, 5000),
                              rng.randrange(0, 4000))
        elif choice < 0.70:
            index = rng.randrange(len(paths))
            old = paths[index]
            new = old + ".mv%d" % rng.randrange(1000)
            if fs.exists(old) and not fs.exists(new):
                fs.rename(old, new)
                paths[index] = new
        elif choice < 0.80:
            # Hard link into another directory.
            path = rng.choice(paths)
            parent = rng.choice(dirs)
            link = "%s/l%d" % (parent.rstrip("/"), rng.randrange(10**6))
            if fs.exists(path) and not fs.exists(link):
                fs.link(path, link)
                paths.append(link)
        elif choice < 0.90:
            parent = rng.choice(dirs)
            name = "%s/d%d" % (parent.rstrip("/"), rng.randrange(10**6))
            if not fs.exists(name):
                fs.mkdir(name)
                dirs.append(name)
        else:
            path = rng.choice(paths)
            if fs.exists(path):
                fs.set_attrs(path, perms=rng.choice([0o600, 0o640, 0o755]),
                             uid=rng.randrange(100))


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(seed=st.integers(0, 10**6), levels=st.integers(1, 4))
def test_random_incremental_chains_reconcile(seed, levels):
    rng = random.Random(seed)
    source = make_fs(name="src", blocks_per_disk=3500)
    paths, dirs = [], ["/"]
    source.mkdir("/d0")
    dirs.append("/d0")
    mutate_randomly(source, rng, paths, dirs, ops=10)

    dumpdates = DumpDates()
    tapes = []
    drive = make_drive("lvl0")
    drain_engine(LogicalDump(source, drive, level=0,
                             dumpdates=dumpdates).run())
    tapes.append(drive)
    for level in range(1, levels + 1):
        mutate_randomly(source, rng, paths, dirs, ops=8)
        drive = make_drive("lvl%d" % level)
        drain_engine(LogicalDump(source, drive, level=level,
                                 dumpdates=dumpdates).run())
        tapes.append(drive)

    target = make_fs(name="dst", blocks_per_disk=3500)
    symtab = None
    for drive in tapes:
        result = drain_engine(
            LogicalRestore(target, drive, symtab=symtab).run()
        )
        symtab = result.symtab

    diffs = verify_trees(source, target, check_mtime=True)
    assert diffs == [], (seed, levels, diffs[:8])
    report = fsck(target)
    assert report.clean, report.errors[:5]
