"""Property tests: copy-on-write clones behave exactly like deep copies.

The COW chunk store (``VirtualDisk.clone``) promises deepcopy semantics —
contents, fault set, counters — while sharing materialized chunks until
first write.  These tests drive random interleavings of writes, clones,
and fault injection against a ``copy.deepcopy`` oracle, on the disk
itself and through the full volume clone chain.
"""

import copy

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.raid.layout import make_geometry
from repro.raid.volume import RaidVolume
from repro.storage.disk import VirtualDisk

BS = 512
NBLOCKS = 96

_fast = settings(max_examples=40, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def _block(payload: bytes) -> bytes:
    return (payload * (BS // max(1, len(payload)) + 1))[:BS]


_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, NBLOCKS - 1),
                  st.binary(min_size=0, max_size=8)),
        st.tuples(st.just("write_run"), st.integers(0, NBLOCKS - 9),
                  st.binary(min_size=1, max_size=8)),
        st.tuples(st.just("clone"), st.integers(0, 3), st.just(b"")),
        st.tuples(st.just("fail"), st.integers(0, NBLOCKS - 1), st.just(b"")),
        st.tuples(st.just("heal"), st.integers(0, NBLOCKS - 1), st.just(b"")),
    ),
    min_size=1, max_size=60,
)


def _apply(disk, op, arg, payload):
    if op == "write":
        disk.write_block(arg, _block(payload) if payload else bytes(BS))
    elif op == "write_run":
        disk.write_run(arg, _block(payload) * 4)
    elif op == "fail":
        disk.fail_block(arg)
    elif op == "heal":
        disk.heal_block(arg)


def _snapshot(disk):
    """Full observable state: contents, fault set, counters."""
    contents = []
    for block in range(disk.nblocks):
        if block in disk._bad:
            contents.append(None)
            continue
        contents.append(disk.read_block(block))
    return contents, set(disk._bad), disk.writes


@_fast
@given(_ops)
def test_clone_interleavings_match_deepcopy_oracle(ops):
    disks = [VirtualDisk(NBLOCKS, BS, name="d")]
    oracles = [copy.deepcopy(disks[0])]
    for op, arg, payload in ops:
        if op == "clone":
            source = arg % len(disks)
            disks.append(disks[source].clone())
            oracles.append(copy.deepcopy(oracles[source]))
            continue
        target = arg % len(disks) if op != "write" else len(disks) - 1
        # Writes go to the newest disk; faults/heals to a varying one,
        # so mutations land both before and after clone points.
        index = len(disks) - 1 if op in ("write", "write_run") else target
        _apply(disks[index], op, arg, payload)
        _apply(oracles[index], op, arg, payload)
    for disk, oracle in zip(disks, oracles):
        assert _snapshot(disk) == _snapshot(oracle)


@_fast
@given(_ops)
def test_clone_mutations_never_leak_between_sides(ops):
    base = VirtualDisk(NBLOCKS, BS, name="base")
    for block in range(0, NBLOCKS, 7):
        base.write_block(block, _block(b"seed%d" % block))
    frozen = copy.deepcopy(base)
    clone = base.clone()
    for op, arg, payload in ops:
        if op == "clone":
            clone = clone.clone()  # deeper chains still share with base
            continue
        _apply(clone, op, arg, payload)
    # The source observes none of the clone's writes or faults.
    assert _snapshot(base) == _snapshot(frozen)


@_fast
@given(st.lists(st.tuples(st.integers(0, 239),
                          st.binary(min_size=1, max_size=8)),
                min_size=1, max_size=25))
def test_volume_clone_chain_matches_deepcopy(writes):
    volume = RaidVolume(make_geometry(2, 3, 40), name="v")
    for block, payload in writes[: len(writes) // 2]:
        volume.write_block(block, (payload * 4096)[:4096])
    clone = volume.clone()
    oracle = copy.deepcopy(volume)
    for block, payload in writes[len(writes) // 2 :]:
        clone.write_block(block, (payload * 4096)[:4096])
    assert clone.verify_parity()
    # Source untouched by clone writes; clone readable everywhere.
    for block, _payload in writes:
        assert volume.read_block(block) == oracle.read_block(block)
