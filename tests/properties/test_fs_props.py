"""Property-based tests over the whole file system and backup stack."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule

from repro.backup import (
    DumpDates,
    LogicalDump,
    LogicalRestore,
    drain_engine,
    verify_trees,
)
from repro.wafl.consts import BLOCK_SIZE
from repro.wafl.fsck import fsck

from tests.conftest import make_drive, make_fs

_slow = settings(max_examples=15, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow,
                                        HealthCheck.data_too_large])


@_slow
@given(st.binary(max_size=3 * BLOCK_SIZE),
       st.integers(0, 2 * BLOCK_SIZE),
       st.binary(max_size=BLOCK_SIZE))
def test_write_read_semantics(initial, offset, patch):
    """File contents behave like a byte array with zero-fill extension."""
    fs = make_fs()
    fs.create("/f", initial)
    fs.write_file("/f", patch, offset)
    expected = bytearray(initial)
    if offset + len(patch) > len(expected):
        expected.extend(bytes(offset + len(patch) - len(expected)))
    expected[offset : offset + len(patch)] = patch
    assert fs.read_file("/f") == bytes(expected)


@_slow
@given(st.binary(max_size=2 * BLOCK_SIZE), st.integers(0, 3 * BLOCK_SIZE))
def test_truncate_semantics(initial, new_size):
    fs = make_fs()
    fs.create("/f", initial)
    fs.truncate("/f", new_size)
    expected = initial[:new_size].ljust(new_size, b"\0")
    assert fs.read_file("/f") == expected


@_slow
@given(st.lists(
    st.tuples(st.sampled_from(["a", "b", "c", "d"]),
              st.binary(max_size=2000)),
    min_size=1, max_size=8,
))
def test_dump_restore_roundtrip_random_trees(files):
    """Any tree survives dump -> restore bit-for-bit."""
    fs = make_fs(name="src")
    for name, data in files:
        path = "/" + name
        if fs.exists(path):
            fs.write_file(path, data, 0)
            fs.truncate(path, len(data))
        else:
            fs.create(path, data)
    drive = make_drive()
    drain_engine(LogicalDump(fs, drive, dumpdates=DumpDates()).run())
    target = make_fs(name="dst")
    drain_engine(LogicalRestore(target, drive).run())
    assert verify_trees(fs, target, check_mtime=True) == []


class FilesystemMachine(RuleBasedStateMachine):
    """Random op sequences keep fsck clean and match a dict model."""

    paths = Bundle("paths")

    def __init__(self):
        super().__init__()
        self.fs = make_fs(blocks_per_disk=3000)
        self.model = {}  # path -> bytes
        self.counter = 0

    @rule(target=paths, data=st.binary(max_size=9000))
    def create_file(self, data):
        self.counter += 1
        path = "/f%d" % self.counter
        self.fs.create(path, data)
        self.model[path] = data
        return path

    @rule(path=paths, data=st.binary(min_size=1, max_size=5000),
          offset=st.integers(0, 8000))
    def overwrite(self, path, data, offset):
        if path not in self.model:
            return
        self.fs.write_file(path, data, offset)
        current = bytearray(self.model[path])
        if offset + len(data) > len(current):
            current.extend(bytes(offset + len(data) - len(current)))
        current[offset : offset + len(data)] = data
        self.model[path] = bytes(current)

    @rule(path=paths)
    def delete(self, path):
        if path not in self.model:
            return
        self.fs.unlink(path)
        del self.model[path]

    @rule(path=paths, size=st.integers(0, 6000))
    def truncate(self, path, size):
        if path not in self.model:
            return
        self.fs.truncate(path, size)
        data = self.model[path]
        self.model[path] = data[:size].ljust(size, b"\0")

    @rule()
    def checkpoint(self):
        self.fs.consistency_point()

    @rule()
    def crash_and_remount(self):
        from repro.wafl.filesystem import WaflFilesystem

        self.fs.consistency_point()
        volume = self.fs.volume
        self.fs.crash()
        self.fs = WaflFilesystem.mount(volume)

    @invariant()
    def contents_match_model(self):
        for path, data in self.model.items():
            assert self.fs.read_file(path) == data

    def teardown(self):
        report = fsck(self.fs)
        assert report.clean, report.errors


TestFilesystemMachine = FilesystemMachine.TestCase
TestFilesystemMachine.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
