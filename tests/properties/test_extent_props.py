"""Property tests pinning the extent-based data plane to per-block oracles.

The chunked ``VirtualDisk`` store, the batched RAID partial-stripe
read-modify-write, and the run-carrying dump-stream writer all replaced
per-block/per-kilobyte loops; each must stay bit-identical to the simple
loop it replaced, across randomized geometries and failure injections.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.raid.layout import make_geometry
from repro.raid.volume import RaidVolume
from repro.storage.disk import VirtualDisk

_fast = settings(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])

BS = 64          # small blocks keep randomized cases cheap
NBLOCKS = 2500   # > one chunk (1024 blocks), so runs cross chunk seams


def _payload(seed: int, nbytes: int) -> bytes:
    return bytes((seed * 31 + i) % 256 for i in range(nbytes))


# ---------------------------------------------------------------------------
# Chunked VirtualDisk vs a plain per-block dict
# ---------------------------------------------------------------------------

write_ops = st.lists(
    st.tuples(st.integers(0, NBLOCKS - 1), st.integers(1, 200),
              st.integers(0, 255)),
    min_size=1, max_size=30,
)


@_fast
@given(write_ops, st.integers(0, NBLOCKS - 1), st.integers(1, 300))
def test_chunked_store_matches_per_block_dict(ops, read_start, read_len):
    disk = VirtualDisk(NBLOCKS, block_size=BS, name="prop")
    reference = {}
    for start, length, seed in ops:
        length = min(length, NBLOCKS - start)
        data = _payload(seed, length * BS)
        disk.write_run(start, data)
        for i in range(length):
            reference[start + i] = data[i * BS : (i + 1) * BS]
    read_len = min(read_len, NBLOCKS - read_start)
    got = bytes(disk.read_run(read_start, read_len))
    expected = b"".join(
        reference.get(read_start + i, b"\0" * BS) for i in range(read_len)
    )
    assert got == expected
    # Per-block reads agree too (and never materialize zero chunks).
    for block in (read_start, read_start + read_len - 1):
        assert disk.read_block(block) == reference.get(block, b"\0" * BS)


@_fast
@given(write_ops)
def test_chunked_store_pickle_round_trip(ops):
    disk = VirtualDisk(NBLOCKS, block_size=BS, name="prop")
    for start, length, seed in ops:
        length = min(length, NBLOCKS - start)
        disk.write_run(start, _payload(seed, length * BS))
    clone = pickle.loads(pickle.dumps(disk))
    assert bytes(clone.read_run(0, NBLOCKS)) == bytes(disk.read_run(0, NBLOCKS))
    # The clone is writable (views must be rebuilt over mutable buffers).
    clone.write_block(0, b"\xa5" * BS)
    assert clone.read_block(0) == b"\xa5" * BS


@_fast
@given(st.integers(0, NBLOCKS - 1), st.integers(0, NBLOCKS - 1),
       st.integers(1, 64))
def test_failed_blocks_poison_runs_and_heal(bad, start, length):
    disk = VirtualDisk(NBLOCKS, block_size=BS, name="prop")
    disk.write_run(0, _payload(1, 8 * BS))
    disk.fail_block(bad)
    length = min(length, NBLOCKS - start)
    covered = start <= bad < start + length
    if covered:
        with pytest.raises(StorageError):
            disk.read_run(start, length)
        with pytest.raises(StorageError):
            disk.read_block(bad)
    else:
        disk.read_run(start, length)
    disk.heal_block(bad)
    disk.read_run(start, length)


# ---------------------------------------------------------------------------
# Batched partial-stripe RMW vs scalar write_block
# ---------------------------------------------------------------------------

raid_writes = st.lists(
    st.tuples(st.integers(0, 239), st.integers(1, 60), st.integers(0, 255)),
    min_size=1, max_size=12,
)


def _volume_image(volume):
    """Raw bytes of every data and parity disk (the full physical state)."""
    chunks = []
    for group in volume.groups:
        for disk in list(group.data_disks) + [group.parity_disk]:
            chunks.append(bytes(disk.read_run(0, disk.nblocks)))
    return b"".join(chunks)


@_fast
@given(raid_writes)
def test_write_run_matches_scalar_write_block(writes):
    batched = RaidVolume(make_geometry(2, 3, 40), name="a")
    reference = RaidVolume(make_geometry(2, 3, 40), name="b")
    bs = batched.block_size
    for start, length, seed in writes:
        length = min(length, batched.nblocks - start)
        data = _payload(seed, length * bs)
        batched.write_run(start, data)
        for i in range(length):
            reference.write_block(start + i, data[i * bs : (i + 1) * bs])
    assert _volume_image(batched) == _volume_image(reference)
    assert batched.verify_parity() and reference.verify_parity()


@_fast
@given(raid_writes, st.integers(0, 239))
def test_write_run_matches_scalar_under_media_failure(writes, bad_block):
    """A failed old column forces the per-block reconstruct fallback; the
    final physical state must match the scalar path hitting the same
    failure."""
    volumes = [RaidVolume(make_geometry(2, 3, 40), name=n) for n in "ab"]
    bs = volumes[0].block_size
    seed_data = _payload(7, volumes[0].nblocks * bs)
    for volume in volumes:
        volume.write_run(0, seed_data)
        loc = volume.locate(bad_block)
        group = volume.groups[loc.group_index]
        stripe = loc.group_block // len(group.data_disks)
        column = loc.group_block % len(group.data_disks)
        group.data_disks[column].fail_block(stripe)
    batched, reference = volumes
    for start, length, seed in writes:
        length = min(length, batched.nblocks - start)
        data = _payload(seed, length * bs)
        batched.write_run(start, data)
        for i in range(length):
            reference.write_block(start + i, data[i * bs : (i + 1) * bs])
    for volume in volumes:
        loc = volume.locate(bad_block)
        group = volume.groups[loc.group_index]
        stripe = loc.group_block // len(group.data_disks)
        column = loc.group_block % len(group.data_disks)
        group.data_disks[column].heal_block(stripe)
    assert _volume_image(batched) == _volume_image(reference)


# ---------------------------------------------------------------------------
# Run-carrying dump records vs the per-kilobyte compat path
# ---------------------------------------------------------------------------

segment_shapes = st.lists(
    st.tuples(st.booleans(), st.integers(1, 40), st.integers(0, 255)),
    min_size=1, max_size=10,
)


@_fast
@given(segment_shapes)
def test_run_fed_records_match_per_kilobyte_feed(shape):
    import io

    from repro.dumpfmt.records import RecordHeader, TapeLabel
    from repro.dumpfmt.spec import SEGMENT_SIZE, TS_INODE
    from repro.dumpfmt.stream import (
        DumpStreamReader,
        DumpStreamWriter,
        runs_to_data,
        segments_to_runs,
    )
    from repro.wafl.inode import FileType

    segments = []
    for is_hole, count, seed in shape:
        for i in range(count):
            segments.append(
                None if is_hole else _payload(seed + i, SEGMENT_SIZE))
    if segments[-1] is None:
        segments.append(_payload(3, SEGMENT_SIZE))
    size = len(segments) * SEGMENT_SIZE

    def dump(feed):
        sink = io.BytesIO()
        writer = DumpStreamWriter(sink, date=100, ddate=0)
        writer.write_tape_header(TapeLabel("prop", "fs", "/", 0, 2, 8))
        writer.write_clri([], 8)
        writer.write_bits([2], 8)
        header = RecordHeader(TS_INODE, 2)
        header.size = size
        header.ftype = FileType.REGULAR
        writer.begin_inode(header)
        feed(writer)
        writer.end_inode()
        writer.write_end()
        return sink.getvalue()

    def feed_runs(writer):
        for count, buf in segments_to_runs(segments):
            if buf is None:
                writer.feed_holes(count)
            else:
                writer.feed_data(buf, count)

    def feed_segments(writer):
        writer.feed_segments(segments)

    run_stream = dump(feed_runs)
    segment_stream = dump(feed_segments)
    assert run_stream == segment_stream

    reader = DumpStreamReader(io.BytesIO(run_stream))
    reader.read_preamble()
    entry = reader.next_inode()
    expected = b"".join(s if s is not None else b"\0" * SEGMENT_SIZE
                        for s in segments)
    assert runs_to_data(entry.runs, size) == expected
