"""Property-based tests for the block map's allocation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import NoSpaceError
from repro.wafl.blockmap import BlockMap

NBLOCKS = 600
RESERVED = 8


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=40), min_size=1,
                max_size=30))
def test_allocations_never_overlap(requests):
    blockmap = BlockMap(NBLOCKS, reserved=RESERVED)
    claimed = set()
    cursor = RESERVED
    for want in requests:
        try:
            start, count = blockmap.allocate_run(want, cursor)
        except NoSpaceError:
            break
        run = set(range(start, start + count))
        assert not run & claimed
        assert all(block >= RESERVED for block in run)
        claimed |= run
        cursor = start + count
    assert blockmap.active_block_count() == len(claimed)


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_free_then_alloc_conserves_counts(data):
    blockmap = BlockMap(NBLOCKS, reserved=RESERVED)
    allocated = []
    for _ in range(data.draw(st.integers(1, 20))):
        start, count = blockmap.allocate_run(
            data.draw(st.integers(1, 16)), RESERVED
        )
        allocated.extend(range(start, start + count))
    to_free = data.draw(
        st.lists(st.sampled_from(allocated), unique=True, max_size=len(allocated))
    ) if allocated else []
    for block in to_free:
        blockmap.free_active(block)
    expected_free = (NBLOCKS - RESERVED) - (len(allocated) - len(to_free))
    assert blockmap.free_blocks() == expected_free


@settings(max_examples=30, deadline=None)
@given(st.sets(st.integers(RESERVED, NBLOCKS - 1), max_size=100),
       st.sets(st.integers(RESERVED, NBLOCKS - 1), max_size=100))
def test_plane_difference_is_set_difference(in_a_only, shared):
    """Table 1 as a property: B − A over arbitrary block sets."""
    blockmap = BlockMap(NBLOCKS, reserved=RESERVED)
    words = blockmap.words
    in_b_only = {(b + 37) % (NBLOCKS - RESERVED) + RESERVED
                 for b in in_a_only} - in_a_only - shared
    for block in in_a_only | shared:
        words[block] |= np.uint32(1 << 1)
    for block in in_b_only | shared:
        words[block] |= np.uint32(1 << 2)
    diff = set(int(x) for x in blockmap.plane_difference(2, 1))
    assert diff == in_b_only


class BlockMapMachine(RuleBasedStateMachine):
    """Stateful fuzz: alloc/free/snapshot operations keep invariants."""

    def __init__(self):
        super().__init__()
        self.blockmap = BlockMap(NBLOCKS, reserved=RESERVED)
        self.active = set()
        self.snapshots = {}  # plane -> frozenset of blocks

    @rule(want=st.integers(1, 24), cursor=st.integers(0, NBLOCKS))
    def allocate(self, want, cursor):
        try:
            start, count = self.blockmap.allocate_run(want, cursor)
        except NoSpaceError:
            return
        for block in range(start, start + count):
            assert block not in self.active
            self.active.add(block)

    @rule(index=st.integers(0, 10000))
    def free_one(self, index):
        if not self.active:
            return
        block = sorted(self.active)[index % len(self.active)]
        self.blockmap.free_active(block)
        self.active.discard(block)

    @rule(plane=st.integers(1, 6))
    def snapshot(self, plane):
        if plane in self.snapshots:
            return
        self.blockmap.snapshot_create(plane)
        self.snapshots[plane] = frozenset(self.active)

    @rule(plane=st.integers(1, 6))
    def delete_snapshot(self, plane):
        if plane not in self.snapshots:
            return
        self.blockmap.snapshot_delete(plane)
        del self.snapshots[plane]

    @invariant()
    def active_plane_matches_model(self):
        assert self.active == set(
            int(b) for b in self.blockmap.plane_blocks(0)
        )

    @invariant()
    def snapshot_planes_match_model(self):
        for plane, blocks in self.snapshots.items():
            assert blocks == set(
                int(b) for b in self.blockmap.plane_blocks(plane)
            )

    @invariant()
    def free_count_consistent(self):
        used = set(self.active)
        for blocks in self.snapshots.values():
            used |= blocks
        assert self.blockmap.free_blocks() == NBLOCKS - RESERVED - len(used)


TestBlockMapMachine = BlockMapMachine.TestCase
TestBlockMapMachine.settings = settings(max_examples=25, deadline=None,
                                        stateful_step_count=30)
