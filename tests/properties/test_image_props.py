"""Property-based: any file-system state survives the image round trip."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backup import (
    ImageDump,
    ImageRestore,
    drain_engine,
    verify_trees,
)
from repro.wafl.filesystem import WaflFilesystem
from repro.wafl.fsck import fsck

from tests.conftest import make_drive, make_fs


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10**6), nsnapshots=st.integers(0, 3))
def test_image_roundtrip_any_state(seed, nsnapshots):
    rng = random.Random(seed)
    fs = make_fs(name="src", blocks_per_disk=2500)
    paths = []
    for index in range(rng.randrange(1, 12)):
        path = "/f%d" % index
        fs.create(path, bytes([rng.randrange(256)]) * rng.randrange(0, 30000))
        paths.append(path)
    for snap in range(nsnapshots):
        if paths and rng.random() < 0.7:
            victim = rng.choice(paths)
            fs.write_file(victim, b"mut", rng.randrange(0, 1000))
        fs.snapshot_create("s%d" % snap)
    if paths and rng.random() < 0.5:
        fs.unlink(paths.pop())
    fs.consistency_point()

    drive = make_drive()
    drain_engine(ImageDump(fs, drive, include_snapshots=True,
                           snapshot_name="s0" if nsnapshots else None,
                           manage_snapshot=nsnapshots == 0).run())
    target_volume = fs.volume.clone_empty()
    drain_engine(ImageRestore(target_volume, drive).run())
    target = WaflFilesystem.mount(target_volume)
    assert verify_trees(fs, target, check_mtime=True) == []
    if nsnapshots:
        assert {s.name for s in target.snapshots()} >= \
            {"s%d" % i for i in range(nsnapshots)}
        for snap in range(nsnapshots):
            source_view = fs.snapshot_view("s%d" % snap)
            target_view = target.snapshot_view("s%d" % snap)
            for path, inode in source_view.walk("/"):
                if inode.is_regular:
                    assert target_view.read_file(path) == \
                        source_view.read_file(path)
    assert fsck(target).clean
