"""Property-based tests for the dump format."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dumpfmt.records import (
    RecordHeader,
    TapeLabel,
    pack_inode_bitmap,
    unpack_inode_bitmap,
)
from repro.dumpfmt.spec import SEGMENT_SIZE, TS_INODE
from repro.dumpfmt.stream import data_to_segments, segments_to_data


@settings(max_examples=60, deadline=None)
@given(
    ino=st.integers(0, 2**32 - 1),
    size=st.integers(0, 2**48),
    perms=st.integers(0, 0o7777),
    nlink=st.integers(0, 2**16 - 1),
    uid=st.integers(0, 2**32 - 1),
    mtime=st.integers(0, 2**63 - 1),
    dos_name=st.binary(max_size=16),
    count=st.integers(0, 64),
)
def test_header_roundtrip_props(ino, size, perms, nlink, uid, mtime,
                                dos_name, count):
    header = RecordHeader(TS_INODE, ino)
    header.size = size
    header.perms = perms
    header.nlink = nlink
    header.uid = uid
    header.mtime = mtime
    header.dos_name = dos_name.rstrip(b"\0")
    header.count = count
    header.segment_map = [index % 2 for index in range(count)]
    recovered = RecordHeader.unpack(header.pack())
    assert recovered.ino == ino
    assert recovered.size == size
    assert recovered.perms == perms
    assert recovered.nlink == nlink
    assert recovered.uid == uid
    assert recovered.mtime == mtime
    assert recovered.dos_name == dos_name.rstrip(b"\0")
    assert recovered.segment_map == header.segment_map


@settings(max_examples=60, deadline=None)
@given(st.sets(st.integers(0, 4000), max_size=200), st.integers(4000, 5000))
def test_bitmap_roundtrip_props(inos, max_ino):
    raw = pack_inode_bitmap(inos, max_ino)
    assert unpack_inode_bitmap(raw) == {i for i in inos if i <= max_ino}


@settings(max_examples=60, deadline=None)
@given(st.binary(max_size=40000),
       st.sets(st.integers(0, 12), max_size=5))
def test_segments_roundtrip_props(data, holes):
    """Splitting into segments and reassembling reproduces the data with
    hole blocks zeroed."""
    segments = data_to_segments(data, holes_4k=holes, block_size=4096)
    recovered = segments_to_data(segments, len(data))
    assert len(recovered) == len(data)
    per_block = 4096 // SEGMENT_SIZE
    for index in range(len(segments)):
        lo = index * SEGMENT_SIZE
        hi = min(len(data), lo + SEGMENT_SIZE)
        if (index // per_block) in holes:
            assert recovered[lo:hi] == bytes(hi - lo)
        else:
            assert recovered[lo:hi] == data[lo:hi]


@settings(max_examples=40, deadline=None)
@given(
    hostname=st.text(alphabet=st.characters(blacklist_characters="\0",
                                            min_codepoint=32,
                                            max_codepoint=0x2FFF),
                     max_size=40),
    subtree=st.text(alphabet=st.characters(blacklist_characters="\0",
                                           min_codepoint=32,
                                           max_codepoint=126),
                    max_size=60),
    level=st.integers(0, 9),
    root_ino=st.integers(2, 2**31),
)
def test_tape_label_roundtrip_props(hostname, subtree, level, root_ino):
    label = TapeLabel(hostname, "fs", subtree, level, root_ino, 100)
    recovered = TapeLabel.unpack(label.pack())
    assert recovered.hostname == hostname
    assert recovered.subtree == subtree
    assert recovered.level == level
    assert recovered.root_ino == root_ino
