"""Property-based tests for RAID parity and reconstruction."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.raid.layout import make_geometry
from repro.raid.volume import RaidVolume

BS = 4096

_fast = settings(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def _block(payload: bytes) -> bytes:
    return (payload * (BS // max(1, len(payload)) + 1))[:BS]


@_fast
@given(st.lists(st.tuples(st.integers(0, 239), st.binary(min_size=1, max_size=16)),
                min_size=1, max_size=40))
def test_parity_invariant_under_any_write_sequence(writes):
    volume = RaidVolume(make_geometry(2, 3, 40), name="v")
    for block, payload in writes:
        volume.write_block(block, _block(payload))
    assert volume.verify_parity()


@_fast
@given(st.lists(st.tuples(st.integers(0, 239), st.binary(min_size=1, max_size=16)),
                min_size=1, max_size=30),
       st.integers(0, 2))
def test_any_single_disk_failure_is_survivable(writes, failed_disk):
    volume = RaidVolume(make_geometry(2, 3, 40), name="v")
    expected = {}
    for block, payload in writes:
        data = _block(payload)
        volume.write_block(block, data)
        expected[block] = data
    for group in volume.groups:
        disk = group.data_disks[failed_disk]
        for stripe in range(disk.nblocks):
            disk.fail_block(stripe)
    for block, data in expected.items():
        assert volume.read_block(block) == data


@_fast
@given(st.integers(0, 239), st.integers(1, 30))
def test_run_read_equals_block_reads(start, length):
    volume = RaidVolume(make_geometry(2, 3, 40), name="v")
    length = min(length, volume.nblocks - start)
    payload = b"".join(_block(bytes([i % 256])) for i in range(length))
    volume.write_run(start, payload)
    joined = b"".join(volume.read_block(start + i) for i in range(length))
    assert volume.read_run(start, length) == joined == payload
