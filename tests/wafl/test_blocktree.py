"""Copy-on-write block tree behaviour (through the file system)."""

import pytest

from repro.errors import FilesystemError
from repro.wafl.blocktree import BlockTree
from repro.wafl.consts import BLOCK_SIZE, NDIRECT, PTRS_PER_BLOCK

from tests.conftest import make_fs


def tree_for(fs, path):
    return BlockTree(fs._ctx, fs.inode(fs.namei(path)))


def test_cow_relocates_on_rewrite():
    fs = make_fs()
    fs.create("/a", b"1" * BLOCK_SIZE)
    fs.consistency_point()
    before = tree_for(fs, "/a").get_pointer(0)
    fs.write_file("/a", b"2" * BLOCK_SIZE, 0)
    after = tree_for(fs, "/a").get_pointer(0)
    assert before != after  # written anywhere, never in place


def test_fresh_block_rewrite_does_not_grow_usage():
    fs = make_fs()
    fs.create("/a", b"1" * BLOCK_SIZE)  # no CP yet: block is fresh
    used = fs.statfs()["active_blocks"]
    # Rewriting a fresh block relocates it but frees the old one
    # immediately (it was never part of a committed image).
    fs.write_file("/a", b"2" * BLOCK_SIZE, 0)
    assert fs.statfs()["active_blocks"] == used
    assert fs.read_file("/a") == b"2" * BLOCK_SIZE


def test_metadata_fresh_rewrite_in_place():
    fs = make_fs()
    fs.create("/a", b"1" * BLOCK_SIZE)
    tree = tree_for(fs, "/a")
    first = tree.get_pointer(0)
    # write_fblock (the metadata/CP path) rewrites fresh blocks in place.
    tree.write_fblock(0, b"3" * BLOCK_SIZE)
    assert tree.get_pointer(0) == first
    assert fs.read_file("/a") == b"3" * BLOCK_SIZE


def test_extents_merge_contiguous_blocks():
    fs = make_fs()
    fs.create("/a", b"z" * (10 * BLOCK_SIZE))
    extents = tree_for(fs, "/a").extents()
    assert sum(count for _f, _v, count in extents) == 10
    # A fresh file system allocates contiguously: few extents.
    assert len(extents) <= 2


def test_hole_pointers_are_zero():
    fs = make_fs()
    fs.create("/a")
    fs.write_file("/a", b"x", offset=5 * BLOCK_SIZE)
    tree = tree_for(fs, "/a")
    for fbn in range(5):
        assert tree.get_pointer(fbn) == 0
    assert tree.get_pointer(5) != 0


def test_punch_hole():
    fs = make_fs()
    fs.create("/a", b"y" * (3 * BLOCK_SIZE))
    tree = tree_for(fs, "/a")
    tree.punch_hole(1)
    tree.flush()
    assert tree.get_pointer(1) == 0
    data = fs.read_file("/a")
    assert data[BLOCK_SIZE : 2 * BLOCK_SIZE] == bytes(BLOCK_SIZE)


def test_indirect_tree_shape():
    fs = make_fs(blocks_per_disk=4000)
    nblocks = NDIRECT + PTRS_PER_BLOCK + 2  # needs double indirect
    fs.create("/a", b"k" * (nblocks * BLOCK_SIZE))
    tree = tree_for(fs, "/a")
    allocated = dict(tree.allocated_fblocks())
    assert len(allocated) == nblocks
    assert sorted(allocated) == list(range(nblocks))
    meta = tree.metadata_blocks()
    # single indirect + dindirect pointer block + 1 child
    assert len(meta) == 3


def test_free_all_releases_everything():
    fs = make_fs()
    fs.create("/a", b"m" * (40 * BLOCK_SIZE))
    fs.consistency_point()
    used_before = fs.statfs()["active_blocks"]
    fs.unlink("/a")
    fs.consistency_point()
    assert fs.statfs()["active_blocks"] <= used_before - 40


def test_max_file_size_enforced():
    fs = make_fs()
    tree = tree_for(fs, "/")
    from repro.wafl.consts import MAX_FILE_BLOCKS

    with pytest.raises(FilesystemError):
        tree.get_pointer(MAX_FILE_BLOCKS)


def test_readonly_context_rejects_mutation():
    fs = make_fs()
    fs.create("/a", b"x" * BLOCK_SIZE)
    fs.snapshot_create("s")
    view = fs.snapshot_view("s")
    tree = BlockTree(view._ctx, view.inode(view.namei("/a")))
    with pytest.raises(FilesystemError):
        tree.write_fblock(0, bytes(BLOCK_SIZE))
    with pytest.raises(FilesystemError):
        tree.truncate_blocks(0)
    with pytest.raises(FilesystemError):
        tree.free_all()


def test_unaligned_write_rejected():
    fs = make_fs()
    fs.create("/a")
    tree = tree_for(fs, "/a")
    with pytest.raises(FilesystemError):
        tree.write_fblock(0, b"tiny")
    with pytest.raises(FilesystemError):
        tree.write_run(0, b"x" * 100)


def test_truncate_blocks_drops_indirect_when_empty():
    fs = make_fs()
    nblocks = NDIRECT + 4
    fs.create("/a", b"p" * (nblocks * BLOCK_SIZE))
    fs.truncate("/a", 2 * BLOCK_SIZE)
    inode = fs.inode(fs.namei("/a"))
    assert inode.indirect == 0
