"""Unit tests for the 32-bit-plane block map."""

import numpy as np
import pytest

from repro.errors import FilesystemError, NoSpaceError
from repro.wafl.blockmap import BlockMap


def test_fresh_map_all_free():
    blockmap = BlockMap(1000, reserved=8)
    assert blockmap.free_blocks() == 992
    assert blockmap.active_block_count() == 0


def test_allocation_sets_active_bit():
    blockmap = BlockMap(1000, reserved=8)
    start, count = blockmap.allocate_run(10, cursor=8)
    assert count == 10
    for block in range(start, start + count):
        assert int(blockmap.words[block]) & 1


def test_allocation_respects_reserved_area():
    blockmap = BlockMap(1000, reserved=8)
    start, _count = blockmap.allocate_run(5, cursor=0)
    assert start >= 8


def test_allocation_wraps_at_end():
    blockmap = BlockMap(100, reserved=8)
    blockmap.allocate_run(92, cursor=8, allow_reserve=True)  # fill everything
    blockmap.free_active(50)
    start, count = blockmap.allocate_run(1, cursor=99, allow_reserve=True)
    assert (start, count) == (50, 1)


def test_allocation_returns_partial_run():
    blockmap = BlockMap(100, reserved=8)
    blockmap.allocate_run(92, cursor=8, allow_reserve=True)
    blockmap.free_active(20)
    blockmap.free_active(21)
    start, count = blockmap.allocate_run(10, cursor=8, allow_reserve=True)
    assert (start, count) == (20, 2)


def test_full_map_raises():
    blockmap = BlockMap(100, reserved=8)
    blockmap.allocate_run(92, cursor=8, allow_reserve=True)
    with pytest.raises(NoSpaceError):
        blockmap.allocate_run(1, cursor=8, allow_reserve=True)


def test_cp_reserve_guards_ordinary_allocations():
    blockmap = BlockMap(100, reserved=8)
    # Fill down to (but not into) the consistency-point reserve.
    while blockmap.free_blocks() > blockmap.cp_reserve:
        blockmap.allocate_run(1, cursor=8)
    with pytest.raises(NoSpaceError):
        blockmap.allocate_run(1, cursor=8)
    # A consistency point may still allocate.
    start, count = blockmap.allocate_run(1, cursor=8, allow_reserve=True)
    assert count == 1


def test_double_free_rejected():
    blockmap = BlockMap(100, reserved=8)
    start, _count = blockmap.allocate_run(1, cursor=8)
    blockmap.free_active(start)
    with pytest.raises(FilesystemError):
        blockmap.free_active(start)


def test_free_extent_merging():
    blockmap = BlockMap(100, reserved=8)
    blockmap.allocate_run(10, cursor=8)
    for block in (10, 12, 11):  # free out of order; must merge
        blockmap.free_active(block)
    start, count = blockmap.allocate_run(3, cursor=8)
    assert (start, count) == (10, 3)


def test_deferred_reuse_blocks_allocation_until_commit():
    blockmap = BlockMap(100, reserved=8)
    blockmap.allocate_run(92, cursor=8, allow_reserve=True)
    blockmap.free_active(30, defer_reuse=True)
    assert int(blockmap.words[30]) == 0  # bit cleared immediately
    with pytest.raises(NoSpaceError):
        blockmap.allocate_run(1, cursor=8, allow_reserve=True)
    committed = blockmap.commit_deferred_reuse()
    assert committed == 1
    start, _count = blockmap.allocate_run(1, cursor=8, allow_reserve=True)
    assert start == 30


def test_snapshot_pins_blocks():
    blockmap = BlockMap(100, reserved=8)
    start, _ = blockmap.allocate_run(5, cursor=8)
    blockmap.snapshot_create(3)
    blockmap.free_active(start)
    # The block stays unavailable: plane 3 still holds it.
    assert int(blockmap.words[start]) == (1 << 3)
    assert start not in [int(b) for b in blockmap.plane_blocks(0)]
    freed = blockmap.snapshot_delete(3)
    assert freed == 1  # only the freed block returns; others still active
    new_start, _ = blockmap.allocate_run(1, cursor=start)
    assert new_start == start


def test_plane_difference_semantics():
    blockmap = BlockMap(100, reserved=8)
    first, _ = blockmap.allocate_run(4, cursor=8)
    blockmap.snapshot_create(1)  # plane A
    second, _ = blockmap.allocate_run(4, cursor=8)
    blockmap.snapshot_create(2)  # plane B
    diff = blockmap.plane_difference(2, 1)
    assert list(diff) == list(range(second, second + 4))


def test_plane_validation():
    blockmap = BlockMap(100, reserved=8)
    with pytest.raises(FilesystemError):
        blockmap.snapshot_create(0)  # the active plane
    with pytest.raises(FilesystemError):
        blockmap.snapshot_create(32)


def test_serialize_deserialize_roundtrip():
    blockmap = BlockMap(3000, reserved=8)
    blockmap.allocate_run(100, cursor=8)
    blockmap.snapshot_create(5)
    raw = b"".join(
        blockmap.serialize_fblock(f) for f in range(blockmap.n_fblocks())
    )
    recovered = BlockMap.deserialize(3000, 8, raw)
    assert np.array_equal(recovered.words, blockmap.words)
    assert recovered.free_blocks() == blockmap.free_blocks()


def test_dirty_tracking():
    blockmap = BlockMap(3000, reserved=8)
    blockmap.dirty_fblocks.clear()
    start, _count = blockmap.allocate_run(1, cursor=2048)
    assert start // 1024 in blockmap.dirty_fblocks


def test_plane_in_use():
    blockmap = BlockMap(100, reserved=8)
    assert not blockmap.plane_in_use(4)
    blockmap.allocate_run(1, cursor=8)
    blockmap.snapshot_create(4)
    assert blockmap.plane_in_use(4)


def test_used_vs_active_counts():
    blockmap = BlockMap(100, reserved=8)
    start, _ = blockmap.allocate_run(5, cursor=8)
    blockmap.snapshot_create(1)
    blockmap.free_active(start)
    assert blockmap.active_block_count() == 4
    assert blockmap.used_block_count() == 5
