"""Crash recovery: consistency points, NVRAM replay, fsinfo redundancy."""

import pytest

from repro.errors import FilesystemError
from repro.nvram.log import NvramLog
from repro.units import MB
from repro.wafl.consts import FSINFO_BLOCKS
from repro.wafl.filesystem import WaflFilesystem
from repro.wafl.fsck import fsck

from tests.conftest import make_fs, make_volume, populate_small_tree


def test_remount_after_clean_cp(fs):
    populate_small_tree(fs)
    fs.consistency_point()
    volume = fs.volume
    fs.crash()
    remounted = WaflFilesystem.mount(volume)
    assert remounted.read_file("/docs/readme.txt").startswith(b"hello backup")
    assert fsck(remounted).clean


def test_crash_loses_uncommitted_ops_without_nvram():
    fs = make_fs()
    fs.create("/kept", b"k")
    fs.consistency_point()
    fs.create("/lost", b"l")
    volume = fs.volume
    fs.crash()
    remounted = WaflFilesystem.mount(volume)
    assert remounted.read_file("/kept") == b"k"
    assert not remounted.exists("/lost")
    assert fsck(remounted).clean


def test_nvram_replay_recovers_tail():
    fs = make_fs(nvram=True)
    nvram = fs.nvram
    fs.mkdir("/d")
    fs.create("/d/committed", b"c" * 5000)
    fs.consistency_point()
    fs.create("/d/recent", b"r" * 3000)
    fs.write_file("/d/committed", b"PATCH", 0)
    fs.rename("/d/recent", "/d/renamed")
    fs.set_attrs("/d/renamed", perms=0o600)
    volume = fs.volume
    fs.crash()
    remounted = WaflFilesystem.mount(volume, nvram=nvram)
    assert remounted.read_file("/d/renamed") == b"r" * 3000
    assert remounted.inode(remounted.namei("/d/renamed")).perms == 0o600
    assert remounted.read_file("/d/committed")[:5] == b"PATCH"
    assert fsck(remounted).clean


def test_nvram_full_forces_consistency_point():
    fs = make_fs(nvram=True)
    cps_before = fs.counters["cp_count"]
    # Write more than half the 4 MB NVRAM: a CP must trigger.
    for index in range(6):
        fs.create("/f%d" % index, b"x" * 512 * 1024)
    assert fs.counters["cp_count"] > cps_before


def test_nvram_failure_is_not_fatal():
    fs = make_fs(nvram=True)
    fs.create("/a", b"committed")
    fs.consistency_point()
    fs.create("/b", b"in-nvram-only")
    fs.nvram.fail()
    volume = fs.volume
    nvram = fs.nvram
    fs.crash()
    # The file system is still self-consistent; only the tail is gone.
    remounted = WaflFilesystem.mount(volume, nvram=nvram)
    assert remounted.read_file("/a") == b"committed"
    assert not remounted.exists("/b")
    assert fsck(remounted).clean


def test_fsinfo_primary_corruption_falls_back():
    fs = make_fs()
    fs.create("/f", b"v")
    fs.consistency_point()
    volume = fs.volume
    for block in range(FSINFO_BLOCKS):
        volume.write_block(block, b"\xde\xad\xbe\xef" * 1024)
    if volume.cache is not None:
        volume.cache.clear()
    remounted = WaflFilesystem.mount(volume)
    assert remounted.read_file("/f") == b"v"


def test_both_fsinfo_copies_corrupt_fails():
    fs = make_fs()
    fs.consistency_point()
    volume = fs.volume
    for block in range(2 * FSINFO_BLOCKS):
        volume.write_block(block, b"\x00" * 4096)
    if volume.cache is not None:
        volume.cache.clear()
    with pytest.raises(FilesystemError):
        WaflFilesystem.mount(volume)


def test_repeated_crash_remount_cycles():
    volume = make_volume()
    nvram = NvramLog(capacity=2 * MB)
    fs = WaflFilesystem.format(volume, nvram=nvram)
    for cycle in range(5):
        fs.create("/c%d" % cycle, bytes([cycle]) * 1000)
        if cycle % 2:
            fs.consistency_point()
        fs.crash()
        fs = WaflFilesystem.mount(volume, nvram=nvram)
    for cycle in range(5):
        assert fs.read_file("/c%d" % cycle) == bytes([cycle]) * 1000
    assert fsck(fs).clean


def test_mount_rejects_geometry_mismatch():
    fs = make_fs()
    fs.consistency_point()
    image = [fs.volume.read_block(b) for b in range(2 * FSINFO_BLOCKS)]
    other = make_volume(ngroups=1, ndata=3, blocks_per_disk=1000)
    for block, data in enumerate(image):
        other.write_block(block, data)
    with pytest.raises(FilesystemError):
        WaflFilesystem.mount(other)


def test_cp_count_increases_monotonically(fs):
    first = fs.fsinfo.cp_count
    fs.consistency_point()
    second = fs.fsinfo.cp_count
    fs.create("/x")
    fs.consistency_point()
    assert first < second < fs.fsinfo.cp_count
