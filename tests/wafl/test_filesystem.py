"""Unit tests for WaflFilesystem namespace and data operations."""

import pytest

from repro.errors import (
    ExistsError,
    FilesystemError,
    IsADirectoryError_,
    NotADirectoryError_,
    NotEmptyError,
    NotFoundError,
)
from repro.wafl.consts import BLOCK_SIZE, NDIRECT, PTRS_PER_BLOCK, ROOT_INO
from repro.wafl.fsck import fsck

from tests.conftest import make_fs


class TestNamespace:
    def test_create_and_read(self, fs):
        fs.create("/a", b"hello")
        assert fs.read_file("/a") == b"hello"

    def test_create_in_subdir(self, fs):
        fs.mkdir("/d")
        fs.create("/d/x", b"1")
        assert fs.read_file("/d/x") == b"1"

    def test_duplicate_create_rejected(self, fs):
        fs.create("/a")
        with pytest.raises(ExistsError):
            fs.create("/a")

    def test_missing_path(self, fs):
        with pytest.raises(NotFoundError):
            fs.read_file("/nope")

    def test_missing_parent(self, fs):
        with pytest.raises(NotFoundError):
            fs.create("/no/such/file")

    def test_file_as_directory_component(self, fs):
        fs.create("/f")
        with pytest.raises(NotADirectoryError_):
            fs.create("/f/child")

    def test_relative_path_rejected(self, fs):
        with pytest.raises(FilesystemError):
            fs.namei("relative/path")

    def test_unlink_removes(self, fs):
        fs.create("/a", b"x")
        fs.unlink("/a")
        assert not fs.exists("/a")

    def test_unlink_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectoryError_):
            fs.unlink("/d")

    def test_rmdir_requires_empty(self, fs):
        fs.mkdir("/d")
        fs.create("/d/x")
        with pytest.raises(NotEmptyError):
            fs.rmdir("/d")
        fs.unlink("/d/x")
        fs.rmdir("/d")
        assert not fs.exists("/d")

    def test_rmdir_on_file_rejected(self, fs):
        fs.create("/f")
        with pytest.raises(NotADirectoryError_):
            fs.rmdir("/f")

    def test_readdir_lists_children(self, fs):
        fs.mkdir("/d")
        fs.create("/d/one")
        fs.create("/d/two")
        names = {name for name, _ino in fs.readdir("/d")}
        assert names == {"one", "two"}

    def test_nlink_accounting(self, fs):
        fs.mkdir("/d")
        root = fs.inode(ROOT_INO)
        assert root.nlink == 3  # '.', '..', and /d
        fs.mkdir("/d/sub")
        assert fs.inode(fs.namei("/d")).nlink == 3


class TestRename:
    def test_simple_rename(self, fs):
        fs.create("/a", b"data")
        fs.rename("/a", "/b")
        assert not fs.exists("/a")
        assert fs.read_file("/b") == b"data"

    def test_rename_across_directories(self, fs):
        fs.mkdir("/d1")
        fs.mkdir("/d2")
        fs.create("/d1/f", b"z")
        fs.rename("/d1/f", "/d2/g")
        assert fs.read_file("/d2/g") == b"z"
        assert fsck(fs).clean

    def test_rename_directory_updates_dotdot(self, fs):
        fs.mkdir("/d1")
        fs.mkdir("/d2")
        fs.mkdir("/d1/sub")
        fs.create("/d1/sub/f", b"k")
        fs.rename("/d1/sub", "/d2/moved")
        assert fs.read_file("/d2/moved/f") == b"k"
        assert fsck(fs).clean

    def test_rename_replaces_file(self, fs):
        fs.create("/a", b"new")
        fs.create("/b", b"old")
        fs.rename("/a", "/b")
        assert fs.read_file("/b") == b"new"
        assert fsck(fs).clean

    def test_rename_onto_nonempty_dir_rejected(self, fs):
        fs.mkdir("/d")
        fs.create("/d/x")
        fs.mkdir("/e")
        with pytest.raises(NotEmptyError):
            fs.rename("/e", "/d")

    def test_rename_missing_source(self, fs):
        with pytest.raises(NotFoundError):
            fs.rename("/ghost", "/b")


class TestLinks:
    def test_hard_link_shares_data(self, fs):
        fs.create("/a", b"shared")
        fs.link("/a", "/b")
        assert fs.read_file("/b") == b"shared"
        assert fs.inode(fs.namei("/a")).nlink == 2
        assert fs.namei("/a") == fs.namei("/b")

    def test_unlink_one_name_keeps_other(self, fs):
        fs.create("/a", b"s")
        fs.link("/a", "/b")
        fs.unlink("/a")
        assert fs.read_file("/b") == b"s"
        assert fs.inode(fs.namei("/b")).nlink == 1

    def test_hard_link_to_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectoryError_):
            fs.link("/d", "/d2")

    def test_symlink_roundtrip(self, fs):
        fs.create("/target", b"t")
        fs.symlink("/ln", "/target")
        assert fs.readlink("/ln") == "/target"

    def test_readlink_on_file_rejected(self, fs):
        fs.create("/f")
        with pytest.raises(FilesystemError):
            fs.readlink("/f")


class TestData:
    def test_overwrite_at_offset(self, fs):
        fs.create("/a", b"0" * 100)
        fs.write_file("/a", b"XY", offset=10)
        data = fs.read_file("/a")
        assert data[10:12] == b"XY"
        assert len(data) == 100

    def test_extend_grows_file(self, fs):
        fs.create("/a", b"12")
        fs.write_file("/a", b"34", offset=2)
        assert fs.read_file("/a") == b"1234"

    def test_sparse_write_leaves_hole(self, fs):
        fs.create("/a")
        fs.write_file("/a", b"tail", offset=10 * BLOCK_SIZE)
        inode = fs.inode(fs.namei("/a"))
        assert inode.size == 10 * BLOCK_SIZE + 4
        data = fs.read_file("/a")
        assert data[:BLOCK_SIZE] == bytes(BLOCK_SIZE)
        assert data[-4:] == b"tail"
        # Fewer blocks allocated than the size implies.
        extents = fs.file_extents(inode.ino)
        allocated = sum(count for _f, _v, count in extents)
        assert allocated == 1

    def test_multiblock_file_roundtrip(self, fs):
        payload = bytes(range(256)) * 200  # 51200 bytes, 13 blocks
        fs.create("/big", payload)
        assert fs.read_file("/big") == payload

    def test_indirect_blocks_used(self, fs):
        size = (NDIRECT + 5) * BLOCK_SIZE
        fs.create("/deep", b"d" * size)
        inode = fs.inode(fs.namei("/deep"))
        assert inode.indirect != 0
        assert fs.read_file("/deep") == b"d" * size
        assert fsck(fs).clean

    def test_double_indirect_blocks_used(self):
        fs = make_fs(ngroups=2, ndata=4, blocks_per_disk=4000)
        size = (NDIRECT + PTRS_PER_BLOCK + 3) * BLOCK_SIZE
        fs.create("/huge", b"h" * size)
        inode = fs.inode(fs.namei("/huge"))
        assert inode.dindirect != 0
        assert fs.read_file("/huge") == b"h" * size
        assert fsck(fs).clean

    def test_truncate_shrinks(self, fs):
        fs.create("/a", b"abcdef" * 1000)
        fs.truncate("/a", 10)
        assert fs.read_file("/a") == b"abcdefabcd"
        assert fsck(fs).clean

    def test_truncate_extends_sparsely(self, fs):
        fs.create("/a", b"ab")
        fs.truncate("/a", 100)
        data = fs.read_file("/a")
        assert data[:2] == b"ab"
        assert data[2:] == bytes(98)

    def test_truncate_zeroes_partial_tail(self, fs):
        fs.create("/a", b"z" * BLOCK_SIZE)
        fs.truncate("/a", 100)
        fs.truncate("/a", BLOCK_SIZE)
        assert fs.read_file("/a") == b"z" * 100 + bytes(BLOCK_SIZE - 100)

    def test_read_directory_as_file_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectoryError_):
            fs.read_file("/d")

    def test_write_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectoryError_):
            fs.write_file("/d", b"x")

    def test_deleted_blocks_reused_after_cp(self, fs):
        fs.create("/a", b"x" * (50 * BLOCK_SIZE))
        before = fs.statfs()["free_blocks"]
        fs.unlink("/a")
        fs.consistency_point()
        fs.consistency_point()
        after = fs.statfs()["free_blocks"]
        assert after > before


class TestAttributes:
    def test_set_attrs(self, fs):
        fs.create("/a")
        fs.set_attrs("/a", perms=0o600, uid=5, gid=6, mtime=1234,
                     dos_name=b"A~1", dos_bits=7, dos_time=99)
        inode = fs.stat("/a")
        assert inode.perms == 0o600
        assert (inode.uid, inode.gid) == (5, 6)
        assert inode.mtime == 1234
        assert inode.dos_name == b"A~1"
        assert inode.dos_bits == 7
        assert inode.dos_time == 99

    def test_acl_roundtrip(self, fs):
        fs.create("/a")
        fs.set_acl("/a", b"\x01\x02SECURITY")
        assert fs.get_acl("/a") == b"\x01\x02SECURITY"

    def test_acl_replacement_frees_old_block(self, fs):
        fs.create("/a")
        fs.set_acl("/a", b"first")
        fs.set_acl("/a", b"second")
        assert fs.get_acl("/a") == b"second"
        assert fsck(fs).clean

    def test_empty_acl_clears(self, fs):
        fs.create("/a")
        fs.set_acl("/a", b"x")
        fs.set_acl("/a", b"")
        assert fs.get_acl("/a") == b""
        assert fs.inode(fs.namei("/a")).acl_block == 0

    def test_oversized_acl_rejected(self, fs):
        fs.create("/a")
        with pytest.raises(FilesystemError):
            fs.set_acl("/a", b"x" * BLOCK_SIZE)

    def test_stat_returns_detached_copy(self, fs):
        fs.create("/a", b"abc")
        copy = fs.stat("/a")
        copy.size = 999
        assert fs.inode(fs.namei("/a")).size == 3


class TestQtrees:
    def test_qtree_id_assignment(self, fs):
        ino = fs.create_qtree("proj")
        assert fs.qtree_of("/proj") == ino

    def test_children_inherit_qtree(self, fs):
        qtree_id = fs.create_qtree("proj")
        fs.mkdir("/proj/sub")
        fs.create("/proj/sub/f")
        assert fs.qtree_of("/proj/sub/f") == qtree_id

    def test_root_has_no_qtree(self, fs):
        fs.create("/plain")
        assert fs.qtree_of("/plain") == 0


class TestWalk:
    def test_walk_visits_everything(self, fs):
        fs.mkdir("/d")
        fs.create("/d/f1")
        fs.mkdir("/d/s")
        fs.create("/d/s/f2")
        paths = {path for path, _ in fs.walk("/")}
        assert paths == {"/", "/d", "/d/f1", "/d/s", "/d/s/f2"}

    def test_walk_subtree(self, fs):
        fs.mkdir("/d")
        fs.create("/d/f")
        fs.create("/outside")
        paths = {path for path, _ in fs.walk("/d")}
        assert paths == {"/d", "/d/f"}

    def test_iter_used_inodes_ascending(self, fs):
        fs.create("/a")
        fs.create("/b")
        inos = [inode.ino for inode in fs.iter_used_inodes()]
        assert inos == sorted(inos)
        assert ROOT_INO in inos


class TestStatfs:
    def test_counts_move_with_data(self, fs):
        before = fs.statfs()
        fs.create("/a", b"x" * (10 * BLOCK_SIZE))
        fs.consistency_point()
        after = fs.statfs()
        assert after["active_blocks"] > before["active_blocks"]
        assert after["free_blocks"] < before["free_blocks"]


class TestRenameCycles:
    def test_rename_into_own_subtree_rejected(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        with pytest.raises(FilesystemError):
            fs.rename("/a", "/a/b/moved")
        assert fs.exists("/a/b")
        assert fsck(fs).clean

    def test_rename_into_deep_descendant_rejected(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        fs.mkdir("/a/b/c")
        with pytest.raises(FilesystemError):
            fs.rename("/a", "/a/b/c/moved")

    def test_rename_to_sibling_subtree_allowed(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        fs.mkdir("/other")
        fs.rename("/a/b", "/other/b")
        assert fs.exists("/other/b")
        assert fsck(fs).clean
