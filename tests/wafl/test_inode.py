"""Unit tests for inode packing and the 256-byte slot format."""

import pytest

from repro.errors import FilesystemError
from repro.wafl.consts import INODE_SIZE, NDIRECT
from repro.wafl.inode import FileType, Inode


def full_inode() -> Inode:
    inode = Inode(42, FileType.REGULAR)
    inode.nlink = 3
    inode.perms = 0o640
    inode.uid = 1001
    inode.gid = 22
    inode.size = 123456789
    inode.atime = 11
    inode.mtime = 22
    inode.ctime = 33
    inode.generation = 7
    inode.qtree = 5
    inode.dos_name = b"LONGNAME.TXT"
    inode.dos_bits = 0x27
    inode.dos_time = 998877
    inode.direct = list(range(100, 100 + NDIRECT))
    inode.indirect = 999
    inode.dindirect = 1000
    inode.acl_block = 1234
    return inode


def test_pack_size_is_slot_size():
    assert len(full_inode().pack()) == INODE_SIZE


def test_pack_unpack_roundtrip():
    original = full_inode()
    recovered = Inode.unpack(42, original.pack())
    for field in Inode.__slots__:
        assert getattr(recovered, field) == getattr(original, field), field


def test_free_inode_roundtrip():
    blank = Inode(7)
    recovered = Inode.unpack(7, blank.pack())
    assert recovered.is_free
    assert recovered.direct == [0] * NDIRECT


def test_type_predicates():
    assert Inode(1, FileType.REGULAR).is_regular
    assert Inode(1, FileType.DIRECTORY).is_dir
    assert Inode(1, FileType.SYMLINK).is_symlink
    assert Inode(1, FileType.FREE).is_free


def test_dos_name_too_long_rejected():
    inode = Inode(1, FileType.REGULAR)
    inode.dos_name = b"x" * 17
    with pytest.raises(FilesystemError):
        inode.pack()


def test_copy_is_independent():
    original = full_inode()
    clone = original.copy()
    clone.direct[0] = 555
    clone.size = 1
    assert original.direct[0] == 100
    assert original.size == 123456789


def test_copy_with_new_ino():
    clone = full_inode().copy(ino=99)
    assert clone.ino == 99


def test_clear_keeps_generation():
    inode = full_inode()
    generation = inode.generation
    inode.clear()
    assert inode.is_free
    assert inode.generation == generation
    assert inode.size == 0
    assert inode.direct == [0] * NDIRECT


def test_short_slot_rejected():
    with pytest.raises(FilesystemError):
        Inode.unpack(1, b"short")


def test_repr_mentions_type():
    assert "file" in repr(Inode(3, FileType.REGULAR))
