"""Vectorized block-map kernels against their per-block references.

``free_active_many`` and the numpy ``commit_deferred_reuse`` replaced
per-block loops; these tests drive both implementations over the same
randomized alloc/free churn and require identical words, free counts,
and extent indexes.  ``spans_with_readthrough`` gets the same treatment
against a straight-line sequential re-implementation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backup.physical.incremental import (
    coalesce_block_array,
    spans_with_readthrough,
)
from repro.errors import FilesystemError
from repro.wafl.blockmap import BlockMap, runs_from_blocks


def snapshot_state(blockmap):
    return (
        blockmap.words.tobytes(),
        blockmap.free_blocks(),
        list(blockmap._starts),
        dict(blockmap._lengths),
        set(blockmap.reuse_excluded),
        set(blockmap.dirty_fblocks),
    )


def churned_pair(seed, nblocks=4096, reserved=16):
    """Two identically-populated maps ready for a free comparison."""
    rng = np.random.RandomState(seed)
    maps = [BlockMap(nblocks, reserved=reserved) for _ in range(2)]
    cursor = reserved
    allocated = []
    for _ in range(40):
        want = int(rng.randint(1, 64))
        start, count = maps[0].allocate_run(want, cursor)
        other = maps[1].allocate_run(want, cursor)
        assert other == (start, count)
        allocated.extend(range(start, start + count))
        cursor = start + count
    return maps, allocated, rng


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("defer", [False, True])
def test_free_active_many_matches_per_block_loop(seed, defer):
    (batched, reference), allocated, rng = churned_pair(seed)
    victims = [b for b in allocated if rng.rand() < 0.5]
    rng.shuffle(victims)

    batched.free_active_many(victims, defer_reuse=defer)
    for block in victims:
        reference.free_active(block, defer_reuse=defer)

    assert snapshot_state(batched) == snapshot_state(reference)
    if defer:
        assert batched.commit_deferred_reuse() \
            == reference_commit(reference)
        assert snapshot_state(batched) == snapshot_state(reference)


def reference_commit(blockmap):
    """The original per-block commit loop, kept as the test oracle."""
    count = 0
    for block in sorted(blockmap.reuse_excluded):
        if blockmap.words[block] == 0:
            blockmap._extent_add(block)
            count += 1
    blockmap.reuse_excluded.clear()
    return count


def test_free_active_many_detects_double_free_in_batch():
    (batched, _), allocated, _ = churned_pair(7)
    with pytest.raises(FilesystemError):
        batched.free_active_many([allocated[0], allocated[0]])


def test_free_active_many_rejects_unallocated_block():
    blockmap = BlockMap(512, reserved=8)
    start, count = blockmap.allocate_run(4, 8)
    with pytest.raises(FilesystemError):
        blockmap.free_active_many([start, start + count])  # one past the run


def test_free_active_many_rejects_out_of_range():
    blockmap = BlockMap(512, reserved=8)
    blockmap.allocate_run(4, 8)
    with pytest.raises(FilesystemError):
        blockmap.free_active_many([2])  # inside the reserved area


def test_free_active_many_snapshot_held_blocks_stay_unallocatable():
    blockmap = BlockMap(512, reserved=8)
    start, count = blockmap.allocate_run(8, 8)
    blockmap.snapshot_create(1)
    free_before = blockmap.free_blocks()
    blockmap.free_active_many(range(start, start + count))
    # The snapshot plane still holds every block: nothing returns.
    assert blockmap.free_blocks() == free_before
    assert blockmap.snapshot_delete(1) == count
    assert blockmap.free_blocks() == free_before + count


def test_runs_from_blocks_edge_cases():
    assert runs_from_blocks(np.array([], dtype=np.int64)) == []
    assert runs_from_blocks(np.array([5])) == [(5, 1)]
    assert runs_from_blocks(np.array([1, 2, 3, 7, 9, 10])) \
        == [(1, 3), (7, 1), (9, 2)]


def sequential_spans(runs, gap_threshold, max_span):
    """The original per-run loop, kept as the test oracle."""
    spans = []
    current_start = None
    current_end = None
    current_runs = []
    for start, count in runs:
        if current_start is None:
            current_start, current_end = start, start + count
            current_runs = [(start, count)]
            continue
        gap = start - current_end
        if 0 <= gap <= gap_threshold and (start + count) - current_start <= max_span:
            current_end = start + count
            current_runs.append((start, count))
        else:
            spans.append((current_start, current_end - current_start,
                          current_runs))
            current_start, current_end = start, start + count
            current_runs = [(start, count)]
    if current_start is not None:
        spans.append((current_start, current_end - current_start,
                      current_runs))
    return spans


@pytest.mark.parametrize("seed", [11, 12, 13, 14])
@pytest.mark.parametrize("gap_threshold,max_span", [(64, 2048), (0, 64), (8, 128)])
def test_spans_with_readthrough_matches_sequential(seed, gap_threshold,
                                                   max_span):
    rng = np.random.RandomState(seed)
    blocks = np.flatnonzero(rng.rand(20_000) < 0.4)
    runs = coalesce_block_array(blocks, max_run=int(rng.randint(16, 200)))
    assert spans_with_readthrough(runs, gap_threshold, max_span) \
        == sequential_spans(runs, gap_threshold, max_span)


def test_spans_oversized_single_run_forms_its_own_span():
    # A single run longer than max_span is still taken whole.
    assert spans_with_readthrough([(0, 5000)], max_span=2048) \
        == [(0, 5000, [(0, 5000)])]


def test_spans_empty_and_unsorted_break():
    assert spans_with_readthrough([]) == []
    # A backwards jump (negative gap) always breaks the span.
    assert spans_with_readthrough([(100, 10), (50, 10)]) \
        == [(100, 10, [(100, 10)]), (50, 10, [(50, 10)])]
