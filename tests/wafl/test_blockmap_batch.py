"""Vectorized block-map kernels against their per-block references.

``free_active_many`` and the numpy ``commit_deferred_reuse`` replaced
per-block loops; these tests drive both implementations over the same
randomized alloc/free churn and require identical words, free counts,
and extent indexes.  ``spans_with_readthrough`` gets the same treatment
against a straight-line sequential re-implementation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backup.physical.incremental import (
    coalesce_block_array,
    spans_with_readthrough,
)
from repro.errors import FilesystemError
from repro.wafl.blockmap import BlockMap, runs_from_blocks


def snapshot_state(blockmap):
    return (
        blockmap.words.tobytes(),
        blockmap.free_blocks(),
        list(blockmap._starts),
        dict(blockmap._lengths),
        set(blockmap.reuse_excluded),
        set(blockmap.dirty_fblocks),
    )


def churned_pair(seed, nblocks=4096, reserved=16):
    """Two identically-populated maps ready for a free comparison."""
    rng = np.random.RandomState(seed)
    maps = [BlockMap(nblocks, reserved=reserved) for _ in range(2)]
    cursor = reserved
    allocated = []
    for _ in range(40):
        want = int(rng.randint(1, 64))
        start, count = maps[0].allocate_run(want, cursor)
        other = maps[1].allocate_run(want, cursor)
        assert other == (start, count)
        allocated.extend(range(start, start + count))
        cursor = start + count
    return maps, allocated, rng


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("defer", [False, True])
def test_free_active_many_matches_per_block_loop(seed, defer):
    (batched, reference), allocated, rng = churned_pair(seed)
    victims = [b for b in allocated if rng.rand() < 0.5]
    rng.shuffle(victims)

    batched.free_active_many(victims, defer_reuse=defer)
    for block in victims:
        reference.free_active(block, defer_reuse=defer)

    assert snapshot_state(batched) == snapshot_state(reference)
    if defer:
        assert batched.commit_deferred_reuse() \
            == reference_commit(reference)
        assert snapshot_state(batched) == snapshot_state(reference)


def reference_commit(blockmap):
    """The original per-block commit loop, kept as the test oracle."""
    count = 0
    for block in sorted(blockmap.reuse_excluded):
        if blockmap.words[block] == 0:
            blockmap._extent_add(block)
            count += 1
    blockmap.reuse_excluded.clear()
    return count


def test_free_active_many_detects_double_free_in_batch():
    (batched, _), allocated, _ = churned_pair(7)
    with pytest.raises(FilesystemError):
        batched.free_active_many([allocated[0], allocated[0]])


def test_free_active_many_duplicate_detection_single_diff(monkeypatch):
    """The duplicate check reuses one ``np.diff`` result for detection and
    error reporting (it used to compute the diff twice on the error path),
    and names the *first* duplicate in sorted order."""
    (batched, _), allocated, _ = churned_pair(9)
    calls = {"count": 0}
    real_diff = np.diff

    def counting_diff(*args, **kwargs):
        calls["count"] += 1
        return real_diff(*args, **kwargs)

    monkeypatch.setattr(np, "diff", counting_diff)
    first_dup = sorted(allocated)[0]
    batch = [allocated[3], first_dup, allocated[5], first_dup,
             allocated[5]]
    with pytest.raises(FilesystemError) as excinfo:
        batched.free_active_many(batch)
    assert "double free of block %d" % first_dup in str(excinfo.value)
    assert calls["count"] == 1
    # The failed batch must not have touched any state.
    assert bool((batched.words[np.asarray(batch)]
                 & np.uint32(1)).all())


def test_pop_min_dirty_matches_repeated_min():
    """Heap-backed drain == min()+discard, including mid-drain dirtying."""
    blockmap = BlockMap(8 * 1024, reserved=16)
    for fbn in (3, 5, 7):
        blockmap.set_active(fbn * 1024)
    assert blockmap.pop_min_dirty() == 3
    # Dirty an fblock *below* the drain position mid-drain: the next pop
    # must return it, exactly as a fresh min() over the set would.
    blockmap.set_active(1 * 1024)
    assert blockmap.pop_min_dirty() == 1
    assert blockmap.pop_min_dirty() == 5
    # Re-dirtying an fblock already drained surfaces it again.
    blockmap.set_active(3 * 1024 + 1)
    assert blockmap.pop_min_dirty() == 3
    assert blockmap.pop_min_dirty() == 7
    assert blockmap.pop_min_dirty() is None
    assert not blockmap.dirty_fblocks


def test_pop_min_dirty_survives_direct_set_mutation():
    """Code (and tests) that mutate ``dirty_fblocks`` directly must not
    desync the drain: the heap is rebuilt from the set when stale."""
    blockmap = BlockMap(4096, reserved=16)
    blockmap.allocate_run(10, 16)
    blockmap.dirty_fblocks.clear()          # bypass the heap
    assert blockmap.pop_min_dirty() is None
    blockmap.dirty_fblocks.update({7, 3, 5})  # bypass the heap again
    assert [blockmap.pop_min_dirty() for _ in range(4)] == [3, 5, 7, None]


def test_block_counts_match_full_scan():
    """Incremental active/used counters == the original word-array scans."""
    rng = np.random.RandomState(33)
    blockmap = BlockMap(4096, reserved=16)

    def check():
        active_scan = int(((blockmap.words & np.uint32(1)) != 0).sum())
        used_scan = int((blockmap.words != 0).sum())
        assert blockmap.active_block_count() == active_scan
        assert blockmap.used_block_count() == used_scan

    cursor = 16
    allocated = []
    for _ in range(25):
        start, count = blockmap.allocate_run(int(rng.randint(1, 60)), cursor)
        allocated.extend(range(start, start + count))
        cursor = start + count
    check()
    blockmap.snapshot_create(1)
    check()
    victims = [b for b in allocated if rng.rand() < 0.4]
    blockmap.free_active_many(victims, defer_reuse=True)
    check()
    blockmap.commit_deferred_reuse()
    check()
    survivors = [b for b in allocated if b not in set(victims)]
    blockmap.free_active(survivors[0])
    check()
    blockmap.set_active(survivors[0])
    check()
    blockmap.snapshot_delete(1)
    check()
    # Round trip through the on-disk form recomputes the same counters.
    raw = b"".join(blockmap.serialize_fblock(fb)
                   for fb in range(blockmap.n_fblocks()))
    clone = BlockMap.deserialize(blockmap.nblocks, blockmap.reserved, raw)
    assert clone.active_block_count() == blockmap.active_block_count()
    assert clone.used_block_count() == blockmap.used_block_count()


def test_free_active_many_rejects_unallocated_block():
    blockmap = BlockMap(512, reserved=8)
    start, count = blockmap.allocate_run(4, 8)
    with pytest.raises(FilesystemError):
        blockmap.free_active_many([start, start + count])  # one past the run


def test_free_active_many_rejects_out_of_range():
    blockmap = BlockMap(512, reserved=8)
    blockmap.allocate_run(4, 8)
    with pytest.raises(FilesystemError):
        blockmap.free_active_many([2])  # inside the reserved area


def test_free_active_many_snapshot_held_blocks_stay_unallocatable():
    blockmap = BlockMap(512, reserved=8)
    start, count = blockmap.allocate_run(8, 8)
    blockmap.snapshot_create(1)
    free_before = blockmap.free_blocks()
    blockmap.free_active_many(range(start, start + count))
    # The snapshot plane still holds every block: nothing returns.
    assert blockmap.free_blocks() == free_before
    assert blockmap.snapshot_delete(1) == count
    assert blockmap.free_blocks() == free_before + count


def test_runs_from_blocks_edge_cases():
    assert runs_from_blocks(np.array([], dtype=np.int64)) == []
    assert runs_from_blocks(np.array([5])) == [(5, 1)]
    assert runs_from_blocks(np.array([1, 2, 3, 7, 9, 10])) \
        == [(1, 3), (7, 1), (9, 2)]


def sequential_spans(runs, gap_threshold, max_span):
    """The original per-run loop, kept as the test oracle."""
    spans = []
    current_start = None
    current_end = None
    current_runs = []
    for start, count in runs:
        if current_start is None:
            current_start, current_end = start, start + count
            current_runs = [(start, count)]
            continue
        gap = start - current_end
        if 0 <= gap <= gap_threshold and (start + count) - current_start <= max_span:
            current_end = start + count
            current_runs.append((start, count))
        else:
            spans.append((current_start, current_end - current_start,
                          current_runs))
            current_start, current_end = start, start + count
            current_runs = [(start, count)]
    if current_start is not None:
        spans.append((current_start, current_end - current_start,
                      current_runs))
    return spans


@pytest.mark.parametrize("seed", [11, 12, 13, 14])
@pytest.mark.parametrize("gap_threshold,max_span", [(64, 2048), (0, 64), (8, 128)])
def test_spans_with_readthrough_matches_sequential(seed, gap_threshold,
                                                   max_span):
    rng = np.random.RandomState(seed)
    blocks = np.flatnonzero(rng.rand(20_000) < 0.4)
    runs = coalesce_block_array(blocks, max_run=int(rng.randint(16, 200)))
    assert spans_with_readthrough(runs, gap_threshold, max_span) \
        == sequential_spans(runs, gap_threshold, max_span)


def test_spans_oversized_single_run_forms_its_own_span():
    # A single run longer than max_span is still taken whole.
    assert spans_with_readthrough([(0, 5000)], max_span=2048) \
        == [(0, 5000, [(0, 5000)])]


def test_spans_empty_and_unsorted_break():
    assert spans_with_readthrough([]) == []
    # A backwards jump (negative gap) always breaks the span.
    assert spans_with_readthrough([(100, 10), (50, 10)]) \
        == [(100, 10, [(100, 10)]), (50, 10, [(50, 10)])]
