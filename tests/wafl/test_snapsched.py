"""Scheduled snapshot rotation tests."""

import pytest

from repro.errors import SnapshotError
from repro.units import HOUR
from repro.wafl.fsck import fsck
from repro.wafl.snapsched import SnapshotSchedule

from tests.conftest import make_fs


def snap_names(fs):
    return sorted(s.name for s in fs.snapshots())


def test_first_tick_takes_all_classes():
    fs = make_fs()
    schedule = SnapshotSchedule.common(fs)
    created = schedule.tick(0.0)
    assert set(created) == {"hourly.0", "nightly.0"}


def test_rotation_shifts_names():
    fs = make_fs()
    schedule = SnapshotSchedule(fs)
    schedule.add_class("hourly", interval=4 * HOUR, keep=3)
    fs.create("/v0", b"0")
    schedule.tick(0)
    fs.create("/v1", b"1")
    schedule.tick(4 * HOUR)
    fs.create("/v2", b"2")
    schedule.tick(8 * HOUR)
    assert snap_names(fs) == ["hourly.0", "hourly.1", "hourly.2"]
    # hourly.2 is the oldest: it predates /v1 and /v2.
    oldest = fs.snapshot_view("hourly.2")
    assert oldest.namei("/v0")
    with pytest.raises(Exception):
        oldest.namei("/v1")


def test_keep_limit_enforced():
    fs = make_fs()
    schedule = SnapshotSchedule(fs)
    schedule.add_class("hourly", interval=1 * HOUR, keep=2)
    for hour in range(5):
        schedule.tick(hour * HOUR)
    assert snap_names(fs) == ["hourly.0", "hourly.1"]
    assert fsck(fs).clean


def test_not_due_means_no_snapshot():
    fs = make_fs()
    schedule = SnapshotSchedule(fs)
    schedule.add_class("hourly", interval=4 * HOUR, keep=3)
    schedule.tick(0)
    assert schedule.tick(1 * HOUR) == []
    assert schedule.tick(3.9 * HOUR) == []
    assert schedule.tick(4 * HOUR) == ["hourly.0"]


def test_deleted_old_snapshot_frees_space():
    fs = make_fs()
    schedule = SnapshotSchedule(fs)
    schedule.add_class("h", interval=1 * HOUR, keep=2)
    fs.create("/big", b"B" * (100 * 4096))
    schedule.tick(0)
    fs.unlink("/big")
    schedule.tick(1 * HOUR)  # big still pinned by h.1
    pinned = fs.statfs()["used_blocks"]
    schedule.tick(2 * HOUR)  # h.1 (holding /big) rotates out
    assert fs.statfs()["used_blocks"] < pinned - 90


def test_classes_are_independent():
    fs = make_fs()
    schedule = SnapshotSchedule.common(fs)
    schedule.tick(0)
    schedule.tick(4 * HOUR)  # only hourly due
    assert snap_names(fs) == ["hourly.0", "hourly.1", "nightly.0"]
    schedule.tick(24 * HOUR)
    assert "nightly.1" in snap_names(fs)


def test_duplicate_class_rejected():
    fs = make_fs()
    schedule = SnapshotSchedule(fs)
    schedule.add_class("h", interval=1.0, keep=2)
    with pytest.raises(SnapshotError):
        schedule.add_class("h", interval=2.0, keep=3)


def test_bad_parameters_rejected():
    fs = make_fs()
    schedule = SnapshotSchedule(fs)
    with pytest.raises(SnapshotError):
        schedule.add_class("x", interval=0, keep=2)
    with pytest.raises(SnapshotError):
        schedule.add_class("y", interval=1, keep=0)


def test_user_recovers_from_scheduled_snapshot():
    """The paper's point: the schedule protects against deletion better
    than daily incrementals do."""
    fs = make_fs()
    schedule = SnapshotSchedule.common(fs)
    fs.create("/work", b"morning's work")
    schedule.tick(0)
    fs.write_file("/work", b"afternoon mistake", 0)
    fs.unlink("/work")
    # Self-service recovery from the newest hourly snapshot.
    view = fs.snapshot_view("hourly.0")
    fs.create("/work", view.read_file("/work"))
    assert fs.read_file("/work") == b"morning's work"


def test_schedule_coexists_with_dumps():
    from repro.backup import DumpDates, LogicalDump, drain_engine
    from tests.conftest import make_drive

    fs = make_fs()
    schedule = SnapshotSchedule.common(fs)
    fs.create("/f", b"x" * 9999)
    schedule.tick(0)
    drain_engine(LogicalDump(fs, make_drive(), dumpdates=DumpDates()).run())
    schedule.tick(4 * HOUR)
    assert "hourly.1" in snap_names(fs)
    assert fsck(fs).clean
