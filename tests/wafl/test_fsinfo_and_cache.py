"""fsinfo serialization and the block buffer cache."""

import pytest

from repro.errors import FilesystemError, SnapshotError
from repro.wafl.buffercache import BlockCache
from repro.wafl.consts import FSINFO_BLOCKS
from repro.wafl.fsinfo import FsInfo, SnapshotRecord
from repro.wafl.inode import FileType, Inode


class TestFsInfo:
    def make_info(self):
        info = FsInfo(4096, 10000)
        info.cp_count = 42
        info.alloc_cursor = 777
        info.next_generation = 9
        info.clock_ticks = 123
        info.inofile_inode = Inode(0, FileType.REGULAR)
        info.inofile_inode.size = 8192
        info.inofile_inode.direct[0] = 55
        return info

    def test_pack_unpack_roundtrip(self):
        info = self.make_info()
        recovered = FsInfo.unpack(info.pack())
        assert recovered.cp_count == 42
        assert recovered.alloc_cursor == 777
        assert recovered.next_generation == 9
        assert recovered.inofile_inode.direct[0] == 55
        assert recovered.inofile_inode.size == 8192

    def test_snapshot_table_roundtrip(self):
        info = self.make_info()
        root = Inode(0, FileType.REGULAR)
        root.direct[0] = 99
        info.snapshots.append(SnapshotRecord(3, "nightly.0", 100, 7, root))
        recovered = FsInfo.unpack(info.pack())
        assert len(recovered.snapshots) == 1
        record = recovered.snapshots[0]
        assert record.snap_id == 3
        assert record.name == "nightly.0"
        assert record.cp_count == 7
        assert record.inofile_inode.direct[0] == 99

    def test_checksum_detects_corruption(self):
        raw = bytearray(self.make_info().pack())
        raw[100] ^= 0xFF
        with pytest.raises(FilesystemError):
            FsInfo.unpack(bytes(raw))

    def test_bad_magic_rejected(self):
        raw = b"NOTMAGIC" + self.make_info().pack()[8:]
        with pytest.raises(FilesystemError):
            FsInfo.unpack(raw)

    def test_image_fits_reserved_region(self):
        info = self.make_info()
        for index in range(20):
            info.snapshots.append(
                SnapshotRecord(index + 1, "s%d" % index, 0, 0,
                               Inode(0, FileType.REGULAR))
            )
        assert len(info.pack()) == FSINFO_BLOCKS * 4096

    def test_free_plane_allocation(self):
        info = self.make_info()
        assert info.free_snapshot_plane() == 1
        info.snapshots.append(
            SnapshotRecord(1, "a", 0, 0, Inode(0, FileType.REGULAR))
        )
        assert info.free_snapshot_plane() == 2

    def test_find_by_name_and_id(self):
        info = self.make_info()
        record = SnapshotRecord(5, "x", 0, 0, Inode(0, FileType.REGULAR))
        info.snapshots.append(record)
        assert info.find_snapshot("x") is record
        assert info.snapshot_by_id(5) is record
        assert info.find_snapshot("y") is None

    def test_long_snapshot_name_rejected(self):
        with pytest.raises(SnapshotError):
            SnapshotRecord(1, "n" * 40, 0, 0, Inode(0, FileType.REGULAR)).pack()

    def test_invalid_plane_rejected(self):
        with pytest.raises(SnapshotError):
            SnapshotRecord(0, "x", 0, 0, Inode(0, FileType.REGULAR))


class TestBlockCache:
    def test_get_put(self):
        cache = BlockCache(4)
        cache.put(1, b"one")
        assert cache.get(1) == b"one"
        assert cache.get(2) is None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = BlockCache(2)
        cache.put(1, b"a")
        cache.put(2, b"b")
        cache.get(1)  # 1 becomes most recent
        cache.put(3, b"c")  # evicts 2
        assert cache.get(2) is None
        assert cache.get(1) == b"a"
        assert cache.evictions == 1

    def test_peek_does_not_touch(self):
        cache = BlockCache(2)
        cache.put(1, b"a")
        cache.put(2, b"b")
        assert cache.peek(1)
        cache.put(3, b"c")  # 1 was NOT refreshed by peek: evicted
        assert not cache.peek(1)

    def test_invalidate_and_clear(self):
        cache = BlockCache(4)
        cache.put(1, b"a")
        cache.invalidate(1)
        assert cache.get(1) is None
        cache.put(2, b"b")
        cache.clear()
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = BlockCache(4)
        cache.put(1, b"a")
        cache.get(1)
        cache.get(9)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BlockCache(0)


class TestCacheOnVolume:
    def test_cache_hides_reads_from_recorder(self):
        from repro.storage.device import IoRecorder
        from tests.conftest import make_volume

        volume = make_volume()
        volume.cache = BlockCache(64)
        volume.write_block(10, b"z" * 4096)
        recorder = IoRecorder()
        volume.recorder = recorder
        volume.read_block(10)  # cache hit: silent
        assert recorder.drain() == []
        volume.cache.clear()
        volume.read_block(10)  # cold: recorded
        assert recorder.drain() == [("read", 10, 1)]

    def test_uncached_reads_flag_bypasses(self):
        from tests.conftest import make_volume

        volume = make_volume()
        volume.cache = BlockCache(64)
        volume.write_block(3, b"q" * 4096)
        volume.uncached_reads = True
        from repro.storage.device import IoRecorder

        recorder = IoRecorder()
        volume.recorder = recorder
        volume.read_block(3)
        assert recorder.drain() == [("read", 3, 1)]
