"""Directory format unit tests."""

import pytest

from repro.errors import FilesystemError
from repro.wafl.directory import Directory, iter_entries, pack_entries


def test_pack_parse_roundtrip():
    entries = [(".", 2), ("..", 2), ("hello.txt", 7), ("sub", 9)]
    data = pack_entries(entries)
    assert list(iter_entries(data)) == entries


def test_unicode_names_roundtrip():
    entries = [("ünïcødé-文件", 5)]
    assert list(iter_entries(pack_entries(entries))) == entries


def test_records_are_aligned():
    data = pack_entries([("abc", 1)])
    assert len(data) % 4 == 0


def test_zero_padding_terminates_parse():
    data = pack_entries([("a", 1)]) + bytes(64)
    assert list(iter_entries(data)) == [("a", 1)]


def test_corrupt_entry_detected():
    data = bytearray(pack_entries([("abc", 1)]))
    data[6] = 0xFF  # namelen low byte: name longer than the record
    data[7] = 0x00
    with pytest.raises(FilesystemError):
        list(iter_entries(bytes(data)))


def test_long_name_rejected():
    with pytest.raises(FilesystemError):
        pack_entries([("x" * 256, 1)])


def test_empty_name_rejected():
    with pytest.raises(FilesystemError):
        pack_entries([("", 1)])


class TestDirectoryObject:
    def test_new_empty_has_dot_entries(self):
        directory = Directory.new_empty(5, 2)
        assert directory.lookup(".") == 5
        assert directory.lookup("..") == 2
        assert directory.is_empty()

    def test_add_remove(self):
        directory = Directory.new_empty(5, 2)
        directory.add("f", 9)
        assert "f" in directory
        assert directory.lookup("f") == 9
        assert directory.remove("f") == 9
        assert "f" not in directory

    def test_duplicate_add_rejected(self):
        directory = Directory.new_empty(5, 2)
        directory.add("f", 9)
        with pytest.raises(FilesystemError):
            directory.add("f", 10)

    def test_slash_in_name_rejected(self):
        directory = Directory.new_empty(5, 2)
        with pytest.raises(FilesystemError):
            directory.add("a/b", 3)

    def test_remove_missing_rejected(self):
        directory = Directory.new_empty(5, 2)
        with pytest.raises(FilesystemError):
            directory.remove("ghost")

    def test_replace(self):
        directory = Directory.new_empty(5, 2)
        directory.add("f", 9)
        assert directory.replace("f", 11) == 9
        assert directory.lookup("f") == 11

    def test_children_excludes_dots(self):
        directory = Directory.new_empty(5, 2)
        directory.add("a", 1)
        assert directory.children() == [("a", 1)]
        assert len(directory) == 3

    def test_pack_parse_preserves_order(self):
        directory = Directory.new_empty(5, 2)
        for index, name in enumerate(["zz", "aa", "mm"]):
            directory.add(name, index + 10)
        recovered = Directory.parse(directory.pack())
        assert recovered.entries() == directory.entries()
