"""Snapshot semantics: instant, read-only, space-shared images."""

import pytest

from repro.errors import FilesystemError, NotFoundError, SnapshotError
from repro.wafl.consts import BLOCK_SIZE, MAX_SNAPSHOTS
from repro.wafl.fsck import fsck, fsck_snapshot

from tests.conftest import make_fs, populate_small_tree


def test_snapshot_preserves_old_contents(fs):
    fs.create("/a", b"version-1")
    fs.snapshot_create("snap")
    fs.write_file("/a", b"version-2", 0)
    view = fs.snapshot_view("snap")
    assert view.read_file("/a") == b"version-1"
    assert fs.read_file("/a") == b"version-2"


def test_snapshot_preserves_deleted_files(fs):
    fs.create("/doomed", b"still here")
    fs.snapshot_create("snap")
    fs.unlink("/doomed")
    assert not fs.exists("/doomed")
    view = fs.snapshot_view("snap")
    assert view.read_file("/doomed") == b"still here"


def test_snapshot_is_readonly(fs):
    fs.create("/a", b"x")
    fs.snapshot_create("snap")
    view = fs.snapshot_view("snap")
    tree_ctx = view._ctx
    with pytest.raises(FilesystemError):
        tree_ctx.alloc_run(1)


def test_snapshot_uses_no_space_until_change(fs):
    fs.create("/a", b"q" * (20 * BLOCK_SIZE))
    fs.consistency_point()
    before = fs.statfs()["used_blocks"]
    fs.snapshot_create("snap")
    after = fs.statfs()["used_blocks"]
    # Only CP meta-data churn (the old block-map and inode-file copies
    # pinned by the snapshot); the 20 data blocks are shared, not copied.
    assert after - before < 2 * fs.blockmap.n_fblocks() + 10


def test_snapshot_delete_frees_space(fs):
    fs.create("/a", b"q" * (40 * BLOCK_SIZE))
    fs.snapshot_create("snap")
    fs.unlink("/a")
    fs.consistency_point()
    held = fs.statfs()["used_blocks"]
    freed = fs.snapshot_delete("snap")
    assert freed >= 40
    assert fs.statfs()["used_blocks"] < held


def test_duplicate_snapshot_name_rejected(fs):
    fs.snapshot_create("x")
    with pytest.raises(SnapshotError):
        fs.snapshot_create("x")


def test_missing_snapshot_rejected(fs):
    with pytest.raises(SnapshotError):
        fs.snapshot_delete("ghost")
    with pytest.raises(SnapshotError):
        fs.snapshot_view("ghost")


def test_snapshot_limit_enforced():
    fs = make_fs(blocks_per_disk=4000)
    fs.create("/f", b"x")
    for index in range(MAX_SNAPSHOTS):
        fs.snapshot_create("s%d" % index)
    with pytest.raises(SnapshotError):
        fs.snapshot_create("one-too-many")


def test_snapshot_ids_recycled(fs):
    fs.create("/f", b"x")
    first = fs.snapshot_create("a")
    fs.snapshot_delete("a")
    second = fs.snapshot_create("b")
    assert second.snap_id == first.snap_id


def test_multiple_snapshots_independent(fs):
    fs.create("/f", b"one")
    fs.snapshot_create("s1")
    fs.write_file("/f", b"two", 0)
    fs.snapshot_create("s2")
    fs.write_file("/f", b"tri", 0)
    assert fs.snapshot_view("s1").read_file("/f") == b"one"
    assert fs.snapshot_view("s2").read_file("/f") == b"two"
    assert fs.read_file("/f") == b"tri"
    assert fsck(fs).clean
    assert fsck_snapshot(fs, "s1").clean
    assert fsck_snapshot(fs, "s2").clean


def test_snapshot_view_walk_and_namei(fs):
    populate_small_tree(fs)
    fs.snapshot_create("snap")
    fs.unlink("/docs/readme.txt")
    view = fs.snapshot_view("snap")
    assert view.namei("/docs/readme.txt")
    paths = {path for path, _ in view.walk("/")}
    assert "/docs/readme.txt" in paths
    with pytest.raises(NotFoundError):
        view.namei("/does/not/exist")


def test_snapshot_view_acl_and_extents(fs):
    populate_small_tree(fs)
    fs.snapshot_create("snap")
    view = fs.snapshot_view("snap")
    ino = view.namei("/src/main.c")
    assert view.get_acl_by_ino(ino) == b"ACL\x01\x02payload"
    extents = view.file_extents(ino)
    assert sum(count for _f, _v, count in extents) >= 1


def test_snapshot_survives_remount(fs):
    fs.create("/f", b"pre-snap")
    fs.snapshot_create("keeper")
    fs.write_file("/f", b"post-snap", 0)
    fs.consistency_point()
    from repro.wafl.filesystem import WaflFilesystem

    volume = fs.volume
    fs.crash()
    remounted = WaflFilesystem.mount(volume)
    assert [s.name for s in remounted.snapshots()] == ["keeper"]
    assert remounted.snapshot_view("keeper").read_file("/f") == b"pre-snap"


def test_snapshot_of_snapshot_state_is_consistent(fs):
    populate_small_tree(fs)
    fs.snapshot_create("s1")
    fs.create("/later", b"l")
    fs.snapshot_create("s2")
    report = fsck_snapshot(fs, "s2")
    assert report.clean, report.errors
    view2 = fs.snapshot_view("s2")
    assert view2.read_file("/later") == b"l"
    view1 = fs.snapshot_view("s1")
    with pytest.raises(NotFoundError):
        view1.namei("/later")
