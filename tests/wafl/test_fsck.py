"""fsck must actually detect corruption, not just bless healthy trees."""


from repro.wafl.consts import BLOCK_SIZE
from repro.wafl.fsck import fsck, fsck_snapshot

from tests.conftest import make_fs, populate_small_tree


def test_clean_tree_is_clean():
    fs = make_fs()
    populate_small_tree(fs)
    report = fsck(fs)
    assert report.clean
    assert report.inodes_checked > 5
    assert report.blocks_checked > 10


def test_detects_wrong_nlink():
    fs = make_fs()
    fs.create("/f", b"x")
    inode = fs.inode(fs.namei("/f"))
    inode.nlink = 5
    fs._ctx.inode_dirty(inode)
    report = fsck(fs)
    assert not report.clean
    assert any("nlink" in error for error in report.errors)


def test_detects_cross_linked_blocks():
    fs = make_fs()
    fs.create("/a", b"a" * BLOCK_SIZE)
    fs.create("/b", b"b" * BLOCK_SIZE)
    inode_a = fs.inode(fs.namei("/a"))
    inode_b = fs.inode(fs.namei("/b"))
    # Point b's first block at a's.
    inode_b.direct[0] = inode_a.direct[0]
    fs._ctx.inode_dirty(inode_b)
    report = fsck(fs)
    assert any("cross-linked" in error for error in report.errors)


def test_detects_dangling_directory_entry():
    fs = make_fs()
    fs.mkdir("/d")
    fs.create("/d/f", b"x")
    victim = fs.namei("/d/f")
    # Surgically clear the inode without fixing the directory.
    inode = fs.inode(victim)
    inode.clear()
    fs._ctx.inode_dirty(inode)
    report = fsck(fs)
    assert any("free inode" in error for error in report.errors)


def test_detects_unreferenced_active_block():
    fs = make_fs()
    fs.consistency_point()
    # Claim a block in the map that nothing references.
    start, _count = fs.blockmap.allocate_run(1, 100)
    report = fsck(fs)
    assert any("unreferenced" in error for error in report.errors)


def test_detects_referenced_but_unmarked_block():
    fs = make_fs()
    fs.create("/f", b"z" * BLOCK_SIZE)
    fs.consistency_point()
    inode = fs.inode(fs.namei("/f"))
    vbn = inode.direct[0]
    # Clear the map bit underneath a live reference.
    fs.blockmap.free_active(vbn)
    report = fsck(fs)
    assert any("not marked active" in error for error in report.errors)


def test_detects_bad_dotdot():
    fs = make_fs()
    fs.mkdir("/d")
    fs.mkdir("/e")
    d_ino = fs.namei("/d")
    d_inode = fs.inode(d_ino)
    directory = fs._read_directory(d_inode)
    directory.replace("..", fs.namei("/e"))
    fs._write_directory(d_inode, directory)
    report = fsck(fs)
    assert any("'..'" in error for error in report.errors)


def test_detects_size_beyond_blocks():
    fs = make_fs()
    fs.create("/f", b"q" * (3 * BLOCK_SIZE))
    inode = fs.inode(fs.namei("/f"))
    inode.size = 2 * BLOCK_SIZE  # blocks allocated past the claimed size
    fs._ctx.inode_dirty(inode)
    report = fsck(fs)
    assert any("size" in error for error in report.errors)


def test_parity_check_option():
    fs = make_fs()
    fs.create("/f", b"x" * BLOCK_SIZE)
    fs.consistency_point()
    assert fsck(fs, check_parity=True).clean
    fs.volume.groups[0].parity_disk.write_block(1, b"\xff" * BLOCK_SIZE)
    report = fsck(fs, check_parity=True)
    assert any("parity" in error for error in report.errors)


def test_snapshot_fsck_flags_missing_plane_bit():
    fs = make_fs()
    fs.create("/f", b"y" * BLOCK_SIZE)
    record = fs.snapshot_create("s")
    # Strip the plane bit from one of the snapshot's blocks.
    import numpy as np

    blocks = fs.blockmap.plane_blocks(record.snap_id)
    victim = int(blocks[-1])
    fs.blockmap.words[victim] &= np.uint32(~(1 << record.snap_id) & 0xFFFFFFFF)
    report = fsck_snapshot(fs, "s")
    assert any("outside its plane" in error for error in report.errors)


def test_snapshot_fsck_unknown_name():
    fs = make_fs()
    report = fsck_snapshot(fs, "ghost")
    assert not report.clean


def test_report_repr():
    fs = make_fs()
    report = fsck(fs)
    assert "clean" in repr(report)
