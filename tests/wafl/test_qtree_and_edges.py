"""Edge cases: qtrees through dump, unicode names, deep trees, big dirs."""


from repro.backup import DumpDates, LogicalDump, LogicalRestore, drain_engine
from repro.backup.logical.inspect import list_tape
from repro.wafl.fsck import fsck

from tests.conftest import make_drive, make_fs


def test_qtree_id_travels_in_dump_headers():
    fs = make_fs()
    qtree_id = fs.create_qtree("proj")
    fs.create("/proj/file", b"q")
    drive = make_drive()
    drain_engine(LogicalDump(fs, drive, dumpdates=DumpDates()).run())
    from repro.dumpfmt.stream import DumpStreamReader

    drive.rewind()
    reader = DumpStreamReader(drive)
    reader.read_preamble()
    qtrees = {}
    while True:
        entry = reader.next_inode()
        if entry is None:
            break
        qtrees[entry.ino] = entry.header.qtree
    assert qtree_id in qtrees.values()


def test_unicode_names_through_dump():
    fs = make_fs(name="src")
    fs.mkdir("/документы")
    fs.create("/документы/résumé.txt", "unicode contents 文件".encode())
    fs.symlink("/документы/ссылка", "/документы/résumé.txt")
    drive = make_drive()
    drain_engine(LogicalDump(fs, drive, dumpdates=DumpDates()).run())
    target = make_fs(name="dst")
    drain_engine(LogicalRestore(target, drive).run())
    assert target.read_file("/документы/résumé.txt") == \
        "unicode contents 文件".encode()
    assert target.readlink("/документы/ссылка") == "/документы/résumé.txt"


def test_deep_tree_through_dump():
    fs = make_fs(name="src")
    path = ""
    for depth in range(24):
        path += "/d%d" % depth
        fs.mkdir(path)
    fs.create(path + "/leaf", b"deep")
    drive = make_drive()
    drain_engine(LogicalDump(fs, drive, dumpdates=DumpDates()).run())
    target = make_fs(name="dst")
    drain_engine(LogicalRestore(target, drive).run())
    assert target.read_file(path + "/leaf") == b"deep"
    assert fsck(target).clean


def test_large_directory_through_dump():
    fs = make_fs(name="src", blocks_per_disk=4000)
    fs.mkdir("/big")
    for index in range(600):  # directory itself spans multiple blocks
        fs.create("/big/file%04d" % index, bytes([index % 256]) * 10)
    assert fs.inode(fs.namei("/big")).size > 4096
    drive = make_drive()
    drain_engine(LogicalDump(fs, drive, dumpdates=DumpDates()).run())
    target = make_fs(name="dst", blocks_per_disk=4000)
    drain_engine(LogicalRestore(target, drive).run())
    assert len(target.readdir("/big")) == 600
    assert target.read_file("/big/file0423") == bytes([423 % 256]) * 10
    assert fsck(target).clean


def test_many_hard_links_one_inode():
    fs = make_fs(name="src")
    fs.create("/base", b"linked")
    for index in range(20):
        fs.link("/base", "/link%d" % index)
    drive = make_drive()
    drain_engine(LogicalDump(fs, drive, dumpdates=DumpDates()).run())
    catalog = list_tape(drive)
    inos = {catalog.find("/link%d" % i).ino for i in range(20)}
    assert len(inos) == 1
    target = make_fs(name="dst")
    drain_engine(LogicalRestore(target, drive).run())
    assert target.inode(target.namei("/base")).nlink == 21


def test_zero_byte_and_one_byte_files():
    fs = make_fs(name="src")
    fs.create("/zero")
    fs.create("/one", b"x")
    drive = make_drive()
    drain_engine(LogicalDump(fs, drive, dumpdates=DumpDates()).run())
    target = make_fs(name="dst")
    drain_engine(LogicalRestore(target, drive).run())
    assert target.read_file("/zero") == b""
    assert target.read_file("/one") == b"x"


def test_snapshot_view_survives_source_remount():
    from repro.wafl.filesystem import WaflFilesystem

    fs = make_fs()
    fs.create("/pre", b"before snap")
    fs.snapshot_create("s")
    fs.write_file("/pre", b"after snap!", 0)
    fs.consistency_point()
    volume = fs.volume
    fs.crash()
    remounted = WaflFilesystem.mount(volume)
    view = remounted.snapshot_view("s")
    assert view.read_file("/pre") == b"before snap"
