"""Golden-file test: a traced run is byte-stable, viewable, well-formed.

The trace of a fixed workload (a logical dump and an image dump of the
small reference tree on the small reference volume) is a pure function
of the workload — no wall clock, no process ids, no dict-order
dependence — so the JSONL sink must match the committed golden file
byte for byte.  Regenerate after an *intended* timing-model change
with::

    PYTHONPATH=src:. python -c "from tests.obs.test_golden_trace import \
write_reference_trace; write_reference_trace('tests/obs/golden/backup_trace.jsonl')"
"""

from __future__ import annotations

import os

from repro.backup import DumpDates, ImageDump, LogicalDump
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.trace import Tracer, read_jsonl, validate_spans
from repro.perf.executor import TimedRun

from tests.conftest import make_drive, make_fs, populate_small_tree

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "backup_trace.jsonl")


def traced_backup_run() -> Tracer:
    """Logical dump then image dump of the fixed tree, one shared tracer."""
    tracer = Tracer()
    fs = make_fs(name="src")
    populate_small_tree(fs)

    logical = TimedRun(tracer=tracer)
    logical.add_job("logical-dump",
                    LogicalDump(fs, make_drive(name="ltape"),
                                dumpdates=DumpDates()).run())
    logical.run()

    image = TimedRun(tracer=tracer)
    image.add_job("image-dump",
                  ImageDump(fs, make_drive(name="itape")).run())
    image.run()
    return tracer


def write_reference_trace(path: str) -> int:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    return traced_backup_run().write_jsonl(path)


def test_traced_run_matches_committed_golden(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    traced_backup_run().write_jsonl(path)
    with open(path, "rb") as handle:
        produced = handle.read()
    with open(GOLDEN_PATH, "rb") as handle:
        golden = handle.read()
    assert produced == golden, (
        "traced run diverged from %s — if the timing model changed on"
        " purpose, regenerate the golden file (see module docstring)"
        % GOLDEN_PATH)


def test_traced_run_is_run_to_run_reproducible(tmp_path):
    first = str(tmp_path / "a.jsonl")
    second = str(tmp_path / "b.jsonl")
    traced_backup_run().write_jsonl(first)
    traced_backup_run().write_jsonl(second)
    with open(first, "rb") as fa, open(second, "rb") as fb:
        assert fa.read() == fb.read()


def test_golden_trace_is_well_formed_and_exportable():
    events = read_jsonl(GOLDEN_PATH)  # also checks the footer count
    assert events, "golden trace is empty"
    validate_spans(events)
    doc = to_chrome_trace(events)
    validate_chrome_trace(doc)
    # Every event category the plane emits is represented.
    cats = {event.get("cat") for event in events}
    assert {"op", "stage", "job", "sim"} <= cats
    # Both jobs made it into the stream.
    tids = {event.get("tid") for event in events}
    assert {"logical-dump", "image-dump", "sim"} <= tids
