"""Shared cleanup for the observability tests.

Every test here may enable the shared registry or install a tracer;
this fixture guarantees both are back to the disabled defaults before
the next test (or the rest of the suite) runs.
"""

import pytest

from repro.obs import REGISTRY, set_tracer


@pytest.fixture(autouse=True)
def clean_obs_state():
    yield
    set_tracer(None)
    REGISTRY.reset()
    REGISTRY.enabled = False
