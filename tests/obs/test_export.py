"""Chrome trace_event export: tid mapping, metadata, schema validation."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    export_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.trace import Tracer


def sample_events():
    tracer = Tracer()
    tracer.begin("outer", cat="stage", ts=0.0, tid="dump")
    tracer.complete("DiskReadOp", cat="op", ts=0.25, dur=0.125, tid="dump",
                    args={"stage": "Dumping files"})
    tracer.instant("sim.run_complete", cat="sim", ts=1.0, tid="sim")
    tracer.end("outer", ts=1.0, tid="dump")
    return tracer.events()


def test_chrome_mapping_tids_and_timestamps():
    doc = to_chrome_trace(sample_events())
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    body = [e for e in events if e["ph"] != "M"]
    # Metadata first: one process_name plus one thread_name per lane.
    assert events[: len(meta)] == meta
    names = {(e["name"], e["args"]["name"]) for e in meta}
    assert ("process_name", "repro") in names
    assert ("thread_name", "dump") in names
    assert ("thread_name", "sim") in names
    # Lanes numbered in first-appearance order, starting at 1.
    assert [e["tid"] for e in body] == [1, 1, 2, 1]
    # Simulated seconds become integer microseconds.
    assert [e["ts"] for e in body] == [0, 250000, 1000000, 1000000]
    complete = body[1]
    assert complete["dur"] == 125000
    assert complete["args"] == {"stage": "Dumping files"}
    instant = body[2]
    assert instant["s"] == "t"
    assert doc["displayTimeUnit"] == "ms"


def test_chrome_mapping_separates_worker_pids():
    tracer = Tracer()
    tracer.instant("a", cat="t", ts=0.0, tid="x")
    worker = Tracer()
    worker.instant("b", cat="t", ts=0.0, tid="x")
    tracer.add_events(worker.take_events(), pid=2)
    doc = to_chrome_trace(tracer.events())
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    process_names = {e["pid"]: e["args"]["name"] for e in meta
                     if e["name"] == "process_name"}
    assert process_names == {0: "repro", 2: "worker-2"}
    # Same tid string on different pids gets distinct chrome lanes.
    lanes = {(e["pid"], e["tid"]) for e in doc["traceEvents"]
             if e["ph"] == "i"}
    assert len(lanes) == 2


def test_validate_chrome_trace_accepts_own_output():
    validate_chrome_trace(to_chrome_trace(sample_events()))


@pytest.mark.parametrize("doc", [
    {},
    {"traceEvents": [{"ph": "Z", "name": "x", "pid": 0, "tid": 1,
                      "ts": 0}]},
    {"traceEvents": [{"ph": "i", "pid": 0, "tid": 1, "ts": 0}]},
    {"traceEvents": [{"ph": "i", "name": "x", "ts": 0}]},
    {"traceEvents": [{"ph": "i", "name": "x", "pid": 0, "tid": 1,
                      "ts": 0.5}]},
    {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 1,
                      "ts": 0}]},
])
def test_validate_chrome_trace_rejects_bad_documents(doc):
    with pytest.raises(ValueError):
        validate_chrome_trace(doc)


def test_export_writes_compact_valid_json(tmp_path):
    path = str(tmp_path / "trace.chrome.json")
    count = export_chrome_trace(sample_events(), path)
    with open(path) as handle:
        doc = json.load(handle)
    assert len(doc["traceEvents"]) == count
    validate_chrome_trace(doc)
    # Unknown phases never reach the export.
    assert {e["ph"] for e in doc["traceEvents"]} <= {"B", "E", "X", "i", "M"}
