"""Per-phase summaries: stage accounting and the Table 3 CPU story."""

from __future__ import annotations

import pytest

from repro.obs.summary import (
    format_phase_summary,
    job_elapsed,
    phase_rows,
)

from tests.obs.test_golden_trace import traced_backup_run


def synthetic_events():
    return [
        {"ph": "X", "cat": "job", "name": "j1", "ts": 0.0, "dur": 10.0,
         "tid": "j1", "seq": 0},
        {"ph": "X", "cat": "stage", "name": "walk", "ts": 0.0, "dur": 4.0,
         "tid": "j1", "seq": 1,
         "args": {"cpu_seconds": 2.0, "disk_bytes": 100, "tape_bytes": 0}},
        {"ph": "X", "cat": "stage", "name": "write", "ts": 4.0, "dur": 6.0,
         "tid": "j1", "seq": 2,
         "args": {"cpu_seconds": 1.5, "disk_bytes": 0, "tape_bytes": 900}},
        {"ph": "X", "cat": "op", "name": "CpuOp", "ts": 0.0, "dur": 1.0,
         "tid": "j1", "seq": 3, "args": {"stage": "walk"}},
        {"ph": "i", "cat": "sim", "name": "sim.run_complete", "ts": 10.0,
         "tid": "sim", "seq": 4},
    ]


def test_phase_rows_pick_only_stage_spans():
    rows = phase_rows(synthetic_events())
    assert [(r.job, r.phase, r.elapsed, r.cpu_seconds) for r in rows] == [
        ("j1", "walk", 4.0, 2.0), ("j1", "write", 6.0, 1.5)]
    assert rows[0].cpu_share == pytest.approx(0.5)
    assert rows[1].disk_bytes == 0 and rows[1].tape_bytes == 900


def test_job_elapsed_reads_job_spans():
    assert job_elapsed(synthetic_events()) == {"j1": 10.0}


def test_format_phase_summary_renders_totals():
    text = format_phase_summary(phase_rows(synthetic_events()))
    lines = text.splitlines()
    assert "phase" in lines[0] and "cpu%" in lines[0]
    assert any("walk" in line for line in lines)
    total = lines[-1]
    assert "total" in total
    assert "10.00" in total  # 4 + 6 elapsed
    assert "3.50" in total   # 2.0 + 1.5 cpu-seconds
    assert format_phase_summary([]).count("\n") == 1  # header + rule only


# ---------------------------------------------------------------------------
# Against a real traced run
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def real_events():
    return traced_backup_run().events()


def test_stage_durations_cover_job_elapsed(real_events):
    """Per-job stage spans tile the job span: sums match the elapsed."""
    elapsed = job_elapsed(real_events)
    assert set(elapsed) == {"logical-dump", "image-dump"}
    for job, job_dur in elapsed.items():
        stage_sum = sum(row.elapsed for row in phase_rows(real_events)
                        if row.job == job)
        assert stage_sum == pytest.approx(job_dur, rel=0.01), job


def test_cpu_attribution_reproduces_table3_ordering(real_events):
    """The paper's Table 3: logical dump burns far more CPU per byte.

    Both engines pay the same fixed snapshot create/delete stages, so the
    CPU-attribution story lives in the data-moving stages: CPU seconds
    per tape byte must be much higher for the file-grain logical dump
    than for the block-grain image dump.
    """
    fixed = {"Creating snapshot", "Deleting snapshot"}
    cpu = {}
    tape = {}
    for row in phase_rows(real_events):
        if row.phase in fixed:
            continue
        cpu[row.job] = cpu.get(row.job, 0.0) + row.cpu_seconds
        tape[row.job] = tape.get(row.job, 0) + row.tape_bytes
    logical = cpu["logical-dump"] / tape["logical-dump"]
    image = cpu["image-dump"] / tape["image-dump"]
    assert logical > 2.0 * image
    # The logical dump's file-grain stages are the CPU-heavy ones.
    logical_stages = {row.phase for row in phase_rows(real_events)
                      if row.job == "logical-dump"}
    assert "Dumping files" in logical_stages
    assert "Creating snapshot" in logical_stages


def test_real_summary_table_is_deterministic(real_events):
    text = format_phase_summary(phase_rows(real_events))
    assert text == format_phase_summary(phase_rows(real_events))
    assert "Dumping files" in text
    assert "Dumping blocks" in text
