"""Metrics registry invariants under seeded-random workloads.

Rather than hand-picked examples, these tests drive the instruments with
reproducible pseudo-random operation sequences and assert the structural
invariants the rest of the plane relies on: counters never decrease,
histogram buckets always sum to the observation count, snapshots
round-trip exactly, and merging two registries equals running their
workloads in one.
"""

from __future__ import annotations

import random

import pytest

from repro.obs.metrics import (
    REGISTRY,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    enable_metrics,
)

SEEDS = [0, 7, 991, 424242]


def random_workload(registry, rng, steps=400):
    """Apply a reproducible mix of operations; returns expected sums."""
    counter_sums = {}
    observations = {}
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.4:
            name = "c%d" % rng.randrange(4)
            amount = rng.choice([1, 1, 2, 0.5, 100])
            registry.counter(name).inc(amount)
            counter_sums[name] = counter_sums.get(name, 0.0) + amount
        elif roll < 0.6:
            name = "g%d" % rng.randrange(2)
            registry.gauge(name).set(rng.randrange(1000))
        else:
            name = "h%d" % rng.randrange(3)
            value = rng.uniform(-2.0, 300.0)
            registry.histogram(name, (1, 4, 16, 64, 256)).observe(value)
            observations.setdefault(name, []).append(value)
    return counter_sums, observations


@pytest.mark.parametrize("seed", SEEDS)
def test_counters_match_running_sums(seed):
    registry = MetricsRegistry(enabled=True)
    counter_sums, _ = random_workload(registry, random.Random(seed))
    snap = registry.snapshot()
    for name, expected in counter_sums.items():
        assert snap["counters"][name] == pytest.approx(expected)


def test_counter_rejects_decrease():
    registry = MetricsRegistry(enabled=True)
    registry.counter("c").inc(3)
    with pytest.raises(ValueError):
        registry.counter("c").inc(-1)
    assert registry.counter("c").value == 3


@pytest.mark.parametrize("seed", SEEDS)
def test_histogram_buckets_sum_to_count(seed):
    registry = MetricsRegistry(enabled=True)
    _, observations = random_workload(registry, random.Random(seed))
    snap = registry.snapshot()
    for name, values in observations.items():
        data = snap["histograms"][name]
        assert sum(data["counts"]) == data["count"] == len(values)
        assert data["total"] == pytest.approx(sum(values))
        # Recompute bucket placement independently.
        expected = [0] * (len(data["bounds"]) + 1)
        for value in values:
            index = 0
            for bound in data["bounds"]:
                if value <= bound:
                    break
                index += 1
            expected[index] += 1
        assert data["counts"] == expected


def test_histogram_declaration_rules():
    registry = MetricsRegistry(enabled=True)
    with pytest.raises(ValueError):
        registry.histogram("missing")  # no bounds on first use
    with pytest.raises(ValueError):
        Histogram("bad", ())  # empty bounds
    with pytest.raises(ValueError):
        Histogram("bad", (4, 1))  # unsorted bounds
    registry.histogram("h", (1, 2))
    with pytest.raises(ValueError):
        registry.histogram("h", (1, 3))  # conflicting re-declaration
    assert registry.histogram("h") is registry.histogram("h", (1, 2))


@pytest.mark.parametrize("seed", SEEDS)
def test_snapshot_round_trips_exactly(seed):
    registry = MetricsRegistry(enabled=True)
    random_workload(registry, random.Random(seed))
    snap = registry.snapshot()
    rebuilt = MetricsRegistry.from_snapshot(snap)
    assert rebuilt.snapshot() == snap
    # Snapshots are plain JSON types with deterministic key order.
    import json
    assert json.loads(json.dumps(snap)) == snap
    assert list(snap["counters"]) == sorted(snap["counters"])
    assert list(snap["histograms"]) == sorted(snap["histograms"])


@pytest.mark.parametrize("seed", SEEDS)
def test_merge_equals_single_registry_run(seed):
    """Splitting a workload across two registries and merging is exact."""
    combined = MetricsRegistry(enabled=True)
    random_workload(combined, random.Random(seed), steps=300)
    random_workload(combined, random.Random(seed + 1), steps=300)

    part_a = MetricsRegistry(enabled=True)
    random_workload(part_a, random.Random(seed), steps=300)
    part_b = MetricsRegistry(enabled=True)
    random_workload(part_b, random.Random(seed + 1), steps=300)
    merged = MetricsRegistry(enabled=True)
    merged.merge(part_a.snapshot())
    merged.merge(part_b.snapshot())

    got, want = merged.snapshot(), combined.snapshot()
    # Bucket counts merge exactly; totals are float sums whose order
    # differs between the split and combined runs, hence approx.
    assert set(got["histograms"]) == set(want["histograms"])
    for name, data in want["histograms"].items():
        assert got["histograms"][name]["counts"] == data["counts"]
        assert got["histograms"][name]["count"] == data["count"]
        assert got["histograms"][name]["bounds"] == data["bounds"]
        assert got["histograms"][name]["total"] == pytest.approx(data["total"])
    assert set(got["counters"]) == set(want["counters"])
    for name, value in want["counters"].items():
        assert got["counters"][name] == pytest.approx(value)
    # Gauges are last-writer-wins: merged must equal part_b's where set.
    for name, value in part_b.snapshot()["gauges"].items():
        assert got["gauges"][name] == value


@pytest.mark.parametrize("seed", SEEDS)
def test_diff_snapshots_recovers_the_delta(seed):
    """before + diff == after, the contract the pool workers rely on."""
    registry = MetricsRegistry(enabled=True)
    random_workload(registry, random.Random(seed), steps=200)
    before = registry.snapshot()
    random_workload(registry, random.Random(seed + 99), steps=200)
    after = registry.snapshot()

    delta = diff_snapshots(before, after)
    rebuilt = MetricsRegistry.from_snapshot(before)
    rebuilt.merge(delta)
    got = rebuilt.snapshot()
    assert set(got["histograms"]) == set(after["histograms"])
    for name, data in after["histograms"].items():
        assert got["histograms"][name]["counts"] == data["counts"]
        assert got["histograms"][name]["count"] == data["count"]
        assert got["histograms"][name]["total"] == pytest.approx(data["total"])
    assert set(got["counters"]) == set(after["counters"])
    for name, value in after["counters"].items():
        assert got["counters"][name] == pytest.approx(value)
    assert got["gauges"] == after["gauges"]
    # The delta itself carries no zero-change entries.
    assert all(delta["counters"].values())
    for data in delta["histograms"].values():
        assert any(data["counts"])


def test_diff_snapshots_of_identical_snapshots_is_empty():
    registry = MetricsRegistry(enabled=True)
    random_workload(registry, random.Random(3), steps=100)
    snap = registry.snapshot()
    delta = diff_snapshots(snap, snap)
    assert delta["counters"] == {}
    assert delta["histograms"] == {}


def test_reset_clears_instruments_but_not_enabled():
    registry = MetricsRegistry(enabled=True)
    registry.counter("c").inc()
    registry.reset()
    assert registry.snapshot() == {"counters": {}, "gauges": {},
                                   "histograms": {}}
    assert registry.enabled


def test_to_text_is_deterministic_and_complete():
    registry = MetricsRegistry(enabled=True)
    registry.counter("tape.writes").inc(3)
    registry.gauge("sim.events_scheduled").set(42)
    hist = registry.histogram("disk.read_run_blocks", (1, 4))
    hist.observe(2)
    hist.observe(9)
    text = registry.to_text()
    assert text == registry.to_text()
    assert "counter   tape.writes" in text
    assert "gauge     sim.events_scheduled" in text
    assert "histogram disk.read_run_blocks" in text
    assert "(-inf, 1]" in text and "(4, +inf)" in text


def test_global_registry_toggle():
    assert REGISTRY.enabled is False  # the suite-wide default
    try:
        assert enable_metrics() is REGISTRY
        assert REGISTRY.enabled
    finally:
        enable_metrics(False)
    assert REGISTRY.enabled is False
