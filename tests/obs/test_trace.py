"""Tracer semantics: nesting discipline, ordering, merge, JSONL sink."""

from __future__ import annotations

import json
import random

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    read_jsonl,
    set_tracer,
    validate_spans,
)


def test_begin_end_pairs_and_ordering():
    tracer = Tracer()
    tracer.begin("outer", cat="t", ts=1.0, tid="a")
    tracer.begin("inner", cat="t", ts=2.0, tid="a")
    tracer.end("inner", ts=3.0, tid="a")
    tracer.end("outer", ts=4.0, tid="a")
    events = tracer.events()
    assert [e["ph"] for e in events] == ["B", "B", "E", "E"]
    assert [e["name"] for e in events] == ["outer", "inner", "inner", "outer"]
    validate_spans(events)


def test_end_mismatch_raises():
    tracer = Tracer()
    tracer.begin("outer", tid="a")
    with pytest.raises(ValueError):
        tracer.end("wrong", tid="a")
    with pytest.raises(ValueError):
        tracer.end("outer", tid="other-lane")


def test_events_sort_by_ts_then_seq():
    tracer = Tracer()
    tracer.instant("late", ts=5.0)
    tracer.instant("early", ts=1.0)
    tracer.instant("early-too", ts=1.0)
    names = [e["name"] for e in tracer.events()]
    # Equal timestamps keep emission (seq) order — the sort is stable.
    assert names == ["early", "early-too", "late"]


def test_missing_ts_falls_back_to_sequence():
    tracer = Tracer()
    first = tracer.instant("one")
    second = tracer.instant("two")
    assert first["ts"] == first["seq"] == 0
    assert second["ts"] == second["seq"] == 1
    assert "wall" not in first  # wall-clock capture is opt-in


def test_wall_clock_capture_is_opt_in():
    stamps = iter([10.5, 11.25])
    tracer = Tracer(wall_clock=lambda: next(stamps))
    event = tracer.instant("x", ts=0.0)
    assert event["wall"] == 10.5
    assert tracer.instant("y", ts=0.0)["wall"] == 11.25


def test_take_events_drains():
    tracer = Tracer()
    tracer.instant("x", ts=0.0)
    assert [e["name"] for e in tracer.take_events()] == ["x"]
    assert tracer.events() == []


def test_add_events_resequences_and_overrides_pid():
    worker = Tracer()
    worker.complete("op", cat="op", ts=3.0, dur=1.0, tid="job")
    worker.instant("mark", ts=4.0, tid="job")
    shipped = worker.take_events()

    parent = Tracer()
    parent.instant("before", ts=0.0)
    parent.add_events(shipped, pid=7)
    events = parent.events()
    assert [e["seq"] for e in events] == [0, 1, 2]
    assert [e.get("pid") for e in events] == [0, 7, 7]
    # The shipped dicts were copied, not adopted.
    assert shipped[0]["pid"] == 0


@pytest.mark.parametrize("seed", [0, 17, 4242])
def test_random_well_nested_streams_validate(seed):
    """Seeded random push/pop across lanes always yields a valid stream."""
    rng = random.Random(seed)
    tracer = Tracer()
    open_counts = {"a": [], "b": [], "c": []}
    for step in range(300):
        tid = rng.choice(list(open_counts))
        stack = open_counts[tid]
        if stack and rng.random() < 0.45:
            tracer.end(stack.pop(), ts=float(step), tid=tid)
        else:
            name = "s%d" % step
            stack.append(name)
            tracer.begin(name, cat="t", ts=float(step), tid=tid)
    for tid, stack in open_counts.items():
        for step, name in enumerate(reversed(stack)):
            tracer.end(name, ts=1000.0 + step, tid=tid)
    validate_spans(tracer.events())


def test_validate_spans_rejects_malformed_streams():
    with pytest.raises(ValueError):
        validate_spans([{"ph": "E", "name": "x", "pid": 0, "tid": 0}])
    with pytest.raises(ValueError):
        validate_spans([
            {"ph": "B", "name": "a", "pid": 0, "tid": 0},
            {"ph": "E", "name": "b", "pid": 0, "tid": 0},
        ])
    with pytest.raises(ValueError):  # left open
        validate_spans([{"ph": "B", "name": "a", "pid": 0, "tid": 0}])
    # Lanes are independent: pid 1's spans don't close pid 0's.
    validate_spans([
        {"ph": "B", "name": "a", "pid": 0, "tid": 0},
        {"ph": "B", "name": "a", "pid": 1, "tid": 0},
        {"ph": "E", "name": "a", "pid": 1, "tid": 0},
        {"ph": "E", "name": "a", "pid": 0, "tid": 0},
    ])


def test_jsonl_round_trip_and_footer(tmp_path):
    tracer = Tracer()
    tracer.complete("op", cat="op", ts=1.5, dur=0.5, tid="j",
                    args={"stage": "s"})
    tracer.instant("mark", cat="sim", ts=2.0, tid="sim")
    path = str(tmp_path / "t.jsonl")
    assert tracer.write_jsonl(path) == 2
    events = read_jsonl(path)
    assert events == tracer.events()
    with open(path) as handle:
        lines = handle.read().splitlines()
    assert len(lines) == 3
    footer = json.loads(lines[-1])
    assert footer == {"events": 2, "ph": "footer", "schema": 1}
    # Keys are sorted in every line — byte-stable output.
    for line in lines:
        assert line == json.dumps(json.loads(line), sort_keys=True)


def test_read_jsonl_rejects_bad_footer(tmp_path):
    path = str(tmp_path / "bad.jsonl")
    with open(path, "w") as handle:
        handle.write('{"ph": "i", "name": "x", "ts": 0, "seq": 0}\n')
    with pytest.raises(ValueError):
        read_jsonl(path)  # no footer at all
    with open(path, "a") as handle:
        handle.write('{"ph": "footer", "events": 5, "schema": 1}\n')
    with pytest.raises(ValueError):
        read_jsonl(path)  # footer count disagrees


def test_null_tracer_is_inert():
    null = NullTracer()
    assert null.enabled is False
    assert null.begin("x") is None
    assert null.end("x") is None
    assert null.complete("x") is None
    assert null.instant("x") is None
    assert null.events() == [] and null.take_events() == []
    null.add_events([{"ph": "i"}])
    with pytest.raises(RuntimeError):
        null.write_jsonl("/dev/null")


def test_global_tracer_install_and_reset():
    assert get_tracer() is NULL_TRACER
    tracer = Tracer()
    set_tracer(tracer)
    assert get_tracer() is tracer
    set_tracer(None)
    assert get_tracer() is NULL_TRACER
