"""Parallel observability: worker event/metric shipping is jobs-invariant.

The pool installs a fresh tracer in each worker (serial and forked
alike), ships events and a per-task metrics delta home with the result,
and merges everything in *declaration* order under a synthetic pid — so
a traced ``--jobs 2`` run produces byte-for-byte the stream a serial run
does.  Task functions live at module top level so they pickle.
"""

from __future__ import annotations

import pytest

from repro.bench.run_all import generate_body
from repro.obs.metrics import REGISTRY
from repro.obs.trace import Tracer, get_tracer, set_tracer
from repro.parallel import TaskPool, TaskSpec, fork_available

JOBS = [1] + ([2] if fork_available() else [])


def traced_task(value):
    tracer = get_tracer()
    if tracer.enabled:
        tracer.begin("task", cat="test", ts=float(value), tid="lane")
        tracer.instant("mark", cat="test", ts=float(value) + 0.25,
                       tid="lane", args={"value": value})
        tracer.end("task", ts=float(value) + 1.0, tid="lane")
    if REGISTRY.enabled:
        REGISTRY.counter("test.tasks").inc()
        REGISTRY.counter("test.sum").inc(value)
        REGISTRY.histogram("test.values", (2, 5)).observe(value)
    return value * value


def _run_observed(jobs, nvalues=5):
    """Run the task grid under a fresh tracer+registry; return the state."""
    set_tracer(Tracer())
    REGISTRY.reset()
    REGISTRY.enabled = True
    try:
        specs = [TaskSpec("t%d" % value, traced_task, (value,))
                 for value in range(nvalues)]
        values = TaskPool(jobs).map_values(specs)
        events = get_tracer().take_events()
        snapshot = REGISTRY.snapshot()
    finally:
        set_tracer(None)
        REGISTRY.reset()
        REGISTRY.enabled = False
    return values, events, snapshot


@pytest.mark.parametrize("jobs", JOBS)
def test_worker_events_merge_in_declaration_order(jobs):
    values, events, snapshot = _run_observed(jobs)
    assert values == [v * v for v in range(5)]
    # Three events per task, tasks in declaration order, pid = index + 1.
    assert len(events) == 15
    marks = [e for e in events if e["name"] == "mark"]
    assert [e["args"]["value"] for e in marks] == [0, 1, 2, 3, 4]
    assert [e["pid"] for e in marks] == [1, 2, 3, 4, 5]
    # Metrics aggregated across every task exactly once.
    assert snapshot["counters"]["test.tasks"] == 5
    assert snapshot["counters"]["test.sum"] == sum(range(5))
    assert snapshot["histograms"]["test.values"]["count"] == 5


@pytest.mark.skipif(not fork_available(), reason="needs fork")
def test_streams_and_metrics_identical_serial_vs_jobs2():
    serial = _run_observed(1)
    parallel = _run_observed(2)
    assert parallel == serial


@pytest.mark.skipif(not fork_available(), reason="needs fork")
def test_run_all_reduced_trace_is_jobs_invariant():
    """The full reduced grid, traced, matches byte-for-byte across jobs."""
    from repro.bench.configs import clear_env_cache

    def traced_body(jobs):
        clear_env_cache()
        set_tracer(Tracer())
        try:
            body = generate_body(jobs=jobs, reduced=True,
                                 echo=lambda *_a, **_k: None)
            events = get_tracer().take_events()
        finally:
            set_tracer(None)
        return body, events

    serial_body, serial_events = traced_body(1)
    parallel_body, parallel_events = traced_body(2)
    assert parallel_body == serial_body
    assert serial_events, "traced grid produced no events"
    assert parallel_events == serial_events
