"""Dump record header and bitmap tests."""

import pytest

from repro.errors import FormatError
from repro.dumpfmt.records import (
    RecordHeader,
    TapeLabel,
    pack_inode_bitmap,
    unpack_inode_bitmap,
)
from repro.dumpfmt.spec import HEADER_SIZE, SEGMENTS_PER_HEADER, TS_END, TS_INODE


def full_header():
    header = RecordHeader(TS_INODE, ino=1234)
    header.date = 999
    header.ddate = 500
    header.size = 123456
    header.perms = 0o640
    header.ftype = 1
    header.nlink = 2
    header.uid = 10
    header.gid = 20
    header.atime, header.mtime, header.ctime = 1, 2, 3
    header.generation = 77
    header.qtree = 4
    header.dos_name = b"EIGHT3~1.TXT"
    header.dos_bits = 0x20
    header.dos_time = 555
    header.acl_length = 64
    header.count = 3
    header.segment_map = [1, 0, 1]
    return header


def test_header_is_exactly_1kb():
    assert len(full_header().pack()) == HEADER_SIZE


def test_header_roundtrip():
    original = full_header()
    recovered = RecordHeader.unpack(original.pack())
    for field in ("type", "ino", "date", "ddate", "size", "perms", "ftype",
                  "nlink", "uid", "gid", "atime", "mtime", "ctime",
                  "generation", "qtree", "dos_name", "dos_bits", "dos_time",
                  "acl_length", "count", "segment_map"):
        assert getattr(recovered, field) == getattr(original, field), field


def test_checksum_detects_bit_flip():
    raw = bytearray(full_header().pack())
    raw[200] ^= 0x01
    with pytest.raises(FormatError):
        RecordHeader.unpack(bytes(raw))


def test_short_header_rejected():
    with pytest.raises(FormatError):
        RecordHeader.unpack(b"x" * 100)


def test_unknown_type_rejected():
    with pytest.raises(FormatError):
        RecordHeader(99)


def test_segment_map_limit():
    header = RecordHeader(TS_INODE)
    header.count = SEGMENTS_PER_HEADER + 1
    header.segment_map = [1] * header.count
    with pytest.raises(FormatError):
        header.pack()


def test_segment_map_count_mismatch():
    header = RecordHeader(TS_INODE)
    header.count = 2
    header.segment_map = [1]
    with pytest.raises(FormatError):
        header.pack()


def test_data_segments_counts_present_only():
    header = full_header()
    assert header.data_segments() == 2


def test_end_record_packs_empty():
    header = RecordHeader(TS_END)
    recovered = RecordHeader.unpack(header.pack())
    assert recovered.type == TS_END
    assert recovered.count == 0


class TestInodeBitmap:
    def test_roundtrip(self):
        inos = {1, 2, 77, 1000}
        raw = pack_inode_bitmap(inos, max_ino=1024)
        assert unpack_inode_bitmap(raw) == inos

    def test_empty(self):
        assert unpack_inode_bitmap(pack_inode_bitmap([], 100)) == set()

    def test_out_of_range_dropped(self):
        raw = pack_inode_bitmap({5, 5000}, max_ino=100)
        assert unpack_inode_bitmap(raw) == {5}

    def test_boundary_ino(self):
        raw = pack_inode_bitmap({100}, max_ino=100)
        assert unpack_inode_bitmap(raw) == {100}


class TestTapeLabel:
    def test_roundtrip(self):
        label = TapeLabel("host", "home", "/qt1", 3, 17, 4096)
        recovered = TapeLabel.unpack(label.pack())
        assert recovered.hostname == "host"
        assert recovered.filesystem == "home"
        assert recovered.subtree == "/qt1"
        assert recovered.level == 3
        assert recovered.root_ino == 17
        assert recovered.max_ino == 4096

    def test_too_long_rejected(self):
        with pytest.raises(FormatError):
            TapeLabel("h" * 2000, "", "/", 0, 2, 0).pack()

    def test_malformed_rejected(self):
        with pytest.raises(FormatError):
            TapeLabel.unpack((5).to_bytes(2, "little") + b"xxxxx")
