"""Dump stream writer/reader tests, including corruption resync."""

import pytest

from repro.errors import FormatError
from repro.dumpfmt.records import RecordHeader, TapeLabel
from repro.dumpfmt.spec import SEGMENT_SIZE, SEGMENTS_PER_HEADER, TS_INODE
from repro.dumpfmt.stream import (
    DumpStreamReader,
    DumpStreamWriter,
    data_to_segments,
    segments_to_data,
)
from repro.wafl.inode import FileType

from tests.conftest import make_drive


def write_basic_stream(drive, files):
    """files: list of (ino, data bytes, acl)."""
    writer = DumpStreamWriter(drive, date=100, ddate=0)
    writer.write_tape_header(TapeLabel("h", "fs", "/", 0, 2, 64))
    writer.write_clri([9], 64)
    writer.write_bits([ino for ino, _d, _a in files], 64)
    for ino, data, acl in files:
        header = RecordHeader(TS_INODE, ino)
        header.size = len(data)
        header.ftype = FileType.REGULAR
        writer.begin_inode(header)
        writer.feed_segments(data_to_segments(data))
        writer.end_inode()
        if acl:
            writer.write_acl(ino, acl)
    writer.write_end()
    return writer


def read_all(drive, resync=False):
    drive.rewind()
    reader = DumpStreamReader(drive)
    reader.read_preamble()
    entries = []
    while True:
        entry = reader.next_inode(resync=resync)
        if entry is None:
            break
        entries.append(entry)
    return reader, entries


def test_segments_roundtrip_with_holes():
    data = b"a" * 3000
    segments = data_to_segments(data, holes_4k={1}, block_size=4096)
    # 3000 bytes = 3 segments; hole block 1 covers segments 4..7 (absent)
    assert len(segments) == 3
    assert segments_to_data(segments, 3000) == data


def test_hole_segments_read_back_as_zeros():
    segments = [b"x" * SEGMENT_SIZE, None, b"y" * SEGMENT_SIZE]
    data = segments_to_data(segments, 3 * SEGMENT_SIZE)
    assert data[SEGMENT_SIZE : 2 * SEGMENT_SIZE] == bytes(SEGMENT_SIZE)


def test_stream_roundtrip():
    drive = make_drive()
    files = [
        (5, b"hello" * 100, b""),
        (6, b"", b""),
        (7, bytes(range(256)) * 30, b"ACLDATA"),
    ]
    write_basic_stream(drive, files)
    reader, entries = read_all(drive)
    assert reader.label.level == 0
    assert reader.clri_inos == {9}
    assert reader.bits_inos == {5, 6, 7}
    assert [e.ino for e in entries] == [5, 6, 7]
    assert entries[0].data == b"hello" * 100
    assert entries[1].data == b""
    assert entries[2].data == bytes(range(256)) * 30
    assert entries[2].acl == b"ACLDATA"


def test_large_file_uses_continuation_records():
    drive = make_drive()
    big = b"Z" * (SEGMENT_SIZE * (SEGMENTS_PER_HEADER + 10))
    write_basic_stream(drive, [(5, big, b"")])
    _reader, entries = read_all(drive)
    assert len(entries) == 1
    assert entries[0].data == big


def test_writer_rejects_nested_inode_records():
    drive = make_drive()
    writer = DumpStreamWriter(drive)
    header = RecordHeader(TS_INODE, 5)
    writer.begin_inode(header)
    with pytest.raises(FormatError):
        writer.begin_inode(RecordHeader(TS_INODE, 6))


def test_reader_requires_preamble_order():
    drive = make_drive()
    writer = DumpStreamWriter(drive)
    writer.write_end()
    drive.rewind()
    reader = DumpStreamReader(drive)
    with pytest.raises(FormatError):
        reader.read_preamble()


def test_corruption_without_resync_raises():
    drive = make_drive()
    write_basic_stream(drive, [(5, b"data" * 600, b"")])
    # Smash bytes in the middle of the stream.
    cartridge = drive.stacker.cartridges[0]
    cartridge.data[4096:4200] = b"\xff" * 104
    drive.rewind()
    reader = DumpStreamReader(drive)
    with pytest.raises(FormatError):
        reader.read_preamble()
        while reader.next_inode() is not None:
            pass


def test_corruption_with_resync_loses_only_affected_file():
    drive = make_drive()
    files = [(5, b"A" * 5000, b""), (6, b"B" * 5000, b""), (7, b"C" * 5000, b"")]
    write_basic_stream(drive, files)
    # Find and corrupt the middle file's header: records are 1 KB aligned.
    stream = drive.stream_bytes()
    cartridge = drive.stacker.cartridges[0]
    # Corrupt a region that starts after file 5's data.
    offset = stream.find(b"B" * SEGMENT_SIZE)
    corrupt_at = (offset // 1024) * 1024 - 1024  # the TS_INODE header of 6
    cartridge.data[corrupt_at : corrupt_at + 8] = b"\x00" * 8
    reader, entries = read_all(drive, resync=True)
    recovered = {e.ino for e in entries}
    assert 5 in recovered
    assert 7 in recovered
    assert reader.resyncs > 0


def test_hole_map_roundtrip_through_stream():
    drive = make_drive()
    writer = DumpStreamWriter(drive, date=1)
    writer.write_tape_header(TapeLabel("h", "f", "/", 0, 2, 8))
    writer.write_clri([], 8)
    writer.write_bits([5], 8)
    header = RecordHeader(TS_INODE, 5)
    header.size = 12 * SEGMENT_SIZE
    header.ftype = FileType.REGULAR
    writer.begin_inode(header)
    # Block 0 has data, block 1 (segments 4-7) is a whole-block hole,
    # block 2 has data.
    writer.feed_segments(
        [b"d" * SEGMENT_SIZE] * 4 + [None] * 4 + [b"e" * SEGMENT_SIZE] * 4
    )
    writer.end_inode()
    writer.write_end()
    _reader, entries = read_all(drive)
    entry = entries[0]
    assert entry.segments[4] is None
    assert entry.hole_blocks(block_size=4096) == {1}
    data = entry.data
    assert data.startswith(b"d")
    assert data.endswith(b"e")
    assert data[4 * SEGMENT_SIZE] == 0
