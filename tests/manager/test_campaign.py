"""The campaign driver end-to-end: 14 simulated days, both strategies.

One module-scoped campaign ages two volumes — ``home`` dumped logically,
``rlse`` dumped as images — under a compact GFS schedule (fulls on days
0 and 8, level 1 on days 4 and 12, level 2 between), keeping a daily
snapshot of each volume as ground truth.  The tests then restore from
exactly the cartridges the catalog plans, verify against the matching
day's snapshot, prune under retention policies, and restore again.
"""

from __future__ import annotations

import pytest

from repro.backup.verify import verify_trees, verify_volumes
from repro.catalog import BackupCatalog
from repro.errors import CatalogError
from repro.manager import (
    GFS,
    CampaignDriver,
    MediaPool,
    prune,
    restore_point_in_time,
)
from repro.units import MB
from repro.workload import WorkloadGenerator

from tests.conftest import make_fs

DAYS = 14


@pytest.fixture(scope="module")
def campaign():
    catalog = BackupCatalog()
    pool = MediaPool(catalog)
    pool.add_blank(60, capacity=2 * MB)
    driver = CampaignDriver(catalog, pool, keep_daily_snapshots=True,
                            seed=7)
    volumes = {}
    for index, (name, strategy) in enumerate(
            [("home", "logical"), ("rlse", "image")]):
        fs = make_fs(name=name)
        generator = WorkloadGenerator(seed=20 + index)
        tree = generator.populate(fs, int(1.5 * MB))
        fs.consistency_point()
        driver.add_volume(fs, tree, strategy, GFS(4, 2))
        volumes[name] = fs
    driver.run(DAYS)
    return catalog, pool, volumes


def restored_matches_snapshot(campaign_state, fsid, day):
    catalog, pool, volumes = campaign_state
    fs, plan = restore_point_in_time(catalog, pool, fsid, day=day)
    problems = verify_trees(volumes[fsid].snapshot_view("day.%d" % day), fs)
    return fs, plan, problems


class TestCampaignHistory:
    def test_gfs_levels_were_run(self, campaign):
        catalog, _pool, _volumes = campaign
        for fsid in ("home", "rlse"):
            levels = [s.level for s in catalog.sets_for(fsid)]
            assert levels == [0, 2, 2, 2, 1, 2, 2, 2, 0, 2, 2, 2, 1, 2, 2, 2][:DAYS]

    def test_every_set_has_media(self, campaign):
        catalog, _pool, _volumes = campaign
        for backup_set in catalog.sets.values():
            assert backup_set.cartridges
            assert backup_set.bytes_to_tape > 0
            for label in backup_set.cartridges:
                assert catalog.cartridge_record(label).set_id == backup_set.set_id

    def test_no_cartridge_is_shared(self, campaign):
        catalog, _pool, _volumes = campaign
        owners = {}
        for backup_set in catalog.sets.values():
            for label in backup_set.cartridges:
                assert label not in owners, (
                    "%s shared by %s and %s"
                    % (label, owners[label], backup_set.set_id))
                owners[label] = backup_set.set_id

    def test_full_spans_multiple_cartridges(self, campaign):
        catalog, _pool, _volumes = campaign
        # 1.5 MB of data dumps to > 2 MB of stream, so the day-0 full
        # must span cartridges — the chain planner has to order them.
        full = catalog.sets_for("home")[0]
        assert len(full.cartridges) >= 2

    def test_dumpdates_followed_the_campaign(self, campaign):
        catalog, _pool, _volumes = campaign
        history = dict(catalog.dumpdates.history("home", "/"))
        assert set(history) == {0, 1, 2}


class TestRestores:
    def test_logical_restore_latest_day(self, campaign):
        fs, plan, problems = restored_matches_snapshot(campaign, "home", 13)
        assert problems == []
        assert [s.day for s in plan.sets] == [8, 12, 13]

    def test_logical_restore_mid_chain_day(self, campaign):
        _fs, plan, problems = restored_matches_snapshot(campaign, "home", 6)
        assert problems == []
        assert [s.day for s in plan.sets] == [0, 4, 6]

    def test_image_restore_latest_day(self, campaign):
        catalog, pool, volumes = campaign
        fs, plan, problems = restored_matches_snapshot(campaign, "rlse", 13)
        assert problems == []
        assert plan.strategy == "image"
        # Physical restore's stronger guarantee: the dumped snapshot's
        # blocks are byte-identical on the rebuilt volume.
        source = volumes["rlse"]
        record = source.fsinfo.find_snapshot("img.rlse.d13")
        assert record is not None
        blocks = source.blockmap.plane_blocks(record.snap_id)
        assert verify_volumes(source.volume, fs.volume, blocks) == []

    def test_image_restore_mid_chain_day(self, campaign):
        _fs, plan, problems = restored_matches_snapshot(campaign, "rlse", 9)
        assert problems == []
        assert [s.day for s in plan.sets] == [8, 9]

    def test_restore_day_without_dump_uses_previous_state(self, campaign):
        catalog, pool, _volumes = campaign
        fs, plan = restore_point_in_time(catalog, pool, "home", day=100)
        assert plan.target.day == 13


class TestPruneAndRestoreAgain:
    def test_prune_then_restore(self, campaign):
        catalog, pool, volumes = campaign
        catalog.set_policy("home", "/", "redundancy 1", save=False)
        catalog.set_policy("rlse", "/", "window 4", save=False)
        retired = prune(catalog, pool)

        # Both volumes lost their first chain (days 0..7).
        for fsid in ("home", "rlse"):
            obsolete_days = sorted(catalog.get_set(set_id).day
                                   for set_id in retired[(fsid, "/")])
            assert obsolete_days == list(range(8))
        assert catalog.validate_no_orphans() == []

        # Recycled cartridges are erased and scratch again.
        for set_ids in retired.values():
            for set_id in set_ids:
                for label in catalog.get_set(set_id).cartridges:
                    assert catalog.cartridge_record(label).status == "scratch"
                    assert pool.cartridge(label).used == 0

        # Old restore points are gone, recent ones still verify.
        with pytest.raises(CatalogError):
            catalog.chain_for("home", target_day=2)
        with pytest.raises(CatalogError):
            catalog.chain_for("rlse", target_day=6)
        for fsid in ("home", "rlse"):
            _fs, _plan, problems = restored_matches_snapshot(
                campaign, fsid, 13)
            assert problems == []

    def test_catalog_survives_a_restart(self, campaign, tmp_path):
        catalog, pool, _volumes = campaign
        catalog.path = str(tmp_path / "cat.json")
        catalog.save()
        loaded = BackupCatalog.load(catalog.path)
        for fsid in ("home", "rlse"):
            assert ([s.set_id for s in loaded.chain_for(fsid).sets]
                    == [s.set_id for s in catalog.chain_for(fsid).sets])
        assert loaded.dumpdates.base_for("home", "/", 2) \
            == catalog.dumpdates.base_for("home", "/", 2)
