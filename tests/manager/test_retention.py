"""Retention policies: keep-sets, chain safety, prune, recycling."""

from __future__ import annotations

import pytest

from repro.catalog import BackupCatalog
from repro.errors import CatalogError
from repro.manager import MediaPool, RecoveryWindow, Redundancy, prune


def build_history(catalog, days=14, fsid="home"):
    """GFS-ish: fulls day 0 and 8, level 1 day 4 and 12, level 2 between."""
    for day in range(days):
        if day % 8 == 0:
            level = 0
        elif day % 4 == 0:
            level = 1
        else:
            level = 2
        catalog.record_set(fsid=fsid, subtree="/", strategy="logical",
                           level=level, day=day, date=100 + day, save=False)


def days_kept(catalog, policy, now_day, fsid="home"):
    obsolete = set(policy.obsolete(catalog, fsid, "/", now_day))
    return [s.day for s in catalog.sets_for(fsid)
            if s.ok and s.set_id not in obsolete]


class TestRedundancy:
    def test_keeps_last_n_full_chains(self):
        catalog = BackupCatalog()
        build_history(catalog)
        # One chain: everything hanging off the day-8 full survives.
        assert days_kept(catalog, Redundancy(1), 13) == list(range(8, 14))
        # Two chains: all 14 days survive.
        assert days_kept(catalog, Redundancy(2), 13) == list(range(14))

    def test_never_proposes_orphans(self):
        catalog = BackupCatalog()
        build_history(catalog)
        obsolete = Redundancy(1).obsolete(catalog, "home", "/", 13)
        catalog.mark_obsolete(obsolete, save=False)
        assert catalog.validate_no_orphans() == []

    def test_ignores_already_obsolete_sets(self):
        catalog = BackupCatalog()
        build_history(catalog)
        first = Redundancy(1).obsolete(catalog, "home", "/", 13)
        catalog.mark_obsolete(first, save=False)
        assert Redundancy(1).obsolete(catalog, "home", "/", 13) == []


class TestRecoveryWindow:
    def test_keeps_window_plus_boundary_chain(self):
        catalog = BackupCatalog()
        build_history(catalog)
        kept = days_kept(catalog, RecoveryWindow(3), 13)
        # Window covers days 10..13; day 9 is the boundary set (the
        # newest state at the window's far edge), and its chain pulls
        # in the day-8 full.
        assert kept == [8, 9, 10, 11, 12, 13]

    def test_wide_window_keeps_everything(self):
        catalog = BackupCatalog()
        build_history(catalog)
        assert days_kept(catalog, RecoveryWindow(30), 13) == list(range(14))

    def test_zero_window_keeps_latest_chain(self):
        catalog = BackupCatalog()
        build_history(catalog)
        kept = days_kept(catalog, RecoveryWindow(0), 13)
        # Day 13 plus its chain (full at 8, level 1 at 12) and the
        # boundary set at day 12 (already in the chain).
        assert kept == [8, 12, 13]

    def test_boundary_restore_still_plans(self):
        catalog = BackupCatalog()
        build_history(catalog)
        obsolete = RecoveryWindow(3).obsolete(catalog, "home", "/", 13)
        catalog.mark_obsolete(obsolete, save=False)
        # Restoring to the far edge of the window (day 10) and to the
        # boundary day both still work.
        assert catalog.chain_for("home", target_day=10).target.day == 10
        assert catalog.chain_for("home", target_day=9).target.day == 9
        with pytest.raises(CatalogError):
            catalog.chain_for("home", target_day=6)


class TestPrune:
    def build_catalog_with_media(self):
        catalog = BackupCatalog()
        pool = MediaPool(catalog)
        pool.add_blank(20, capacity=1 << 20)
        for day in range(6):
            level = 0 if day % 4 == 0 else 2
            drive = pool.drive_for_job("home.d%d" % day)
            drive.write(b"x" * (1000 + day))
            backup_set = catalog.record_set(
                fsid="home", subtree="/", strategy="logical", level=level,
                day=day, date=100 + day, save=False)
            pool.commit_job(drive, backup_set)
        return catalog, pool

    def test_prune_applies_policies_and_recycles(self):
        catalog, pool = self.build_catalog_with_media()
        catalog.set_policy("home", "/", "redundancy 1", save=False)
        old_chain = [s for s in catalog.sets_for("home") if s.day < 4]
        old_labels = [label for s in old_chain for label in s.cartridges]
        retired = prune(catalog, pool)
        assert retired[("home", "/")] == [s.set_id for s in old_chain]
        for label in old_labels:
            record = catalog.cartridge_record(label)
            assert record.status == "scratch"
            assert record.set_id is None
            assert pool.cartridge(label).used == 0
        # The surviving chain still restores.
        plan = catalog.chain_for("home")
        assert [s.day for s in plan.sets] == [4, 5]

    def test_prune_without_policies_is_a_noop(self):
        catalog, pool = self.build_catalog_with_media()
        assert prune(catalog, pool) == {}
        assert all(s.ok for s in catalog.sets.values())

    def test_prune_is_idempotent(self):
        catalog, pool = self.build_catalog_with_media()
        catalog.set_policy("home", "/", "redundancy 1", save=False)
        prune(catalog, pool)
        assert prune(catalog, pool) == {}

    def test_recycled_cartridges_are_reused_by_new_jobs(self):
        catalog, pool = self.build_catalog_with_media()
        catalog.set_policy("home", "/", "redundancy 1", save=False)
        prune(catalog, pool)
        drive = pool.drive_for_job("home.d6")
        drive.write(b"y" * 500)
        backup_set = catalog.record_set(
            fsid="home", subtree="/", strategy="logical", level=0,
            day=6, date=106, save=False)
        labels = pool.commit_job(drive, backup_set)
        # The freed first cartridge is back at the head of the pool.
        assert labels == ["crt0001"]

    def test_prune_with_explicit_now_day(self):
        catalog, pool = self.build_catalog_with_media()
        catalog.set_policy("home", "/", "window 10", save=False)
        # Pretend much time has passed: everything but the boundary
        # chain falls outside the window.
        retired = prune(catalog, pool, now_day=40)
        survivors = [s.day for s in catalog.sets_for("home") if s.ok]
        assert survivors == [4, 5]
        assert ("home", "/") in retired
