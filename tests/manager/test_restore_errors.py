"""restore_point_in_time error paths: every refusal is a clear
CatalogError, never a partial restore.

A small module-scoped campaign (one logical volume, four days under a
compact GFS) provides real chains; the tests then ask for restores the
catalog cannot honestly serve.
"""

from __future__ import annotations

import pytest

from repro.catalog import BackupCatalog
from repro.catalog.records import STATUS_OBSOLETE
from repro.errors import CatalogError
from repro.manager import (
    GFS,
    CampaignDriver,
    MediaPool,
    restore_point_in_time,
)
from repro.units import MB
from repro.workload import WorkloadGenerator

from tests.conftest import make_fs

DAYS = 4


@pytest.fixture(scope="module")
def campaign():
    catalog = BackupCatalog()
    pool = MediaPool(catalog)
    pool.add_blank(30, capacity=2 * MB)
    driver = CampaignDriver(catalog, pool, seed=13)
    fs = make_fs(name="home")
    tree = WorkloadGenerator(seed=41).populate(fs, int(0.8 * MB))
    fs.consistency_point()
    driver.add_volume(fs, tree, "logical", GFS(4, 2))
    driver.run(DAYS)
    return catalog, pool


class TestRestoreRefusals:
    def test_unknown_fsid_refused(self, campaign):
        catalog, pool = campaign
        with pytest.raises(CatalogError, match="no backup of ghost:/"):
            restore_point_in_time(catalog, pool, "ghost")

    def test_unknown_subtree_refused(self, campaign):
        catalog, pool = campaign
        with pytest.raises(CatalogError, match="no backup"):
            restore_point_in_time(catalog, pool, "home", subtree="/nowhere")

    def test_day_before_first_full_refused(self, campaign):
        catalog, pool = campaign
        with pytest.raises(CatalogError,
                           match="at or before day -1"):
            restore_point_in_time(catalog, pool, "home", day=-1)

    def test_pruned_chain_refused(self, campaign):
        catalog, pool = campaign
        # Knock the day-0 full out from under the incrementals: every
        # restore that needs the chain must refuse, naming the hole.
        full = catalog.sets_for("home")[0]
        assert full.level == 0
        original = full.status
        full.status = STATUS_OBSOLETE
        try:
            with pytest.raises(CatalogError, match="which was pruned"):
                restore_point_in_time(catalog, pool, "home", day=DAYS - 1)
        finally:
            full.status = original

    def test_error_leaves_catalog_usable(self, campaign):
        catalog, pool = campaign
        with pytest.raises(CatalogError):
            restore_point_in_time(catalog, pool, "ghost")
        fs, plan = restore_point_in_time(catalog, pool, "home", day=DAYS - 1)
        assert plan.sets
        assert sum(1 for _ in fs.walk("/")) > 1
