"""Dump-level schedules and the policy/schedule parsers."""

from __future__ import annotations

import pytest

from repro.errors import CatalogError
from repro.manager import (
    GFS,
    RecoveryWindow,
    Redundancy,
    TowerOfHanoi,
    parse_policy,
    parse_schedule,
)


class TestGFS:
    def test_default_cycle_shape(self):
        schedule = GFS()  # 7x4
        levels = schedule.preview(28)
        assert levels[0] == 0
        assert levels[7] == levels[14] == levels[21] == 1
        assert all(levels[d] == 2 for d in range(28)
                   if d % 7 != 0)
        assert schedule.level_for(28) == 0  # next cycle's full

    def test_compact_cycle(self):
        schedule = GFS(days_per_week=4, weeks_per_cycle=2)
        assert schedule.preview(9) == [0, 2, 2, 2, 1, 2, 2, 2, 0]

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(CatalogError):
            GFS(days_per_week=0)
        with pytest.raises(CatalogError):
            GFS(weeks_per_cycle=0)


class TestTowerOfHanoi:
    def test_ruler_sequence(self):
        schedule = TowerOfHanoi(levels=3)
        assert schedule.preview(9) == [0, 3, 2, 3, 1, 3, 2, 3, 0]

    def test_every_day_has_a_shallower_earlier_dump(self):
        """Any day's restore chain can always find a lower level behind it."""
        schedule = TowerOfHanoi(levels=4)
        levels = schedule.preview(32)
        for day in range(1, 32):
            if levels[day] == 0:
                continue  # a full needs no base
            assert any(levels[prev] < levels[day] for prev in range(day))

    def test_level_bounds(self):
        with pytest.raises(CatalogError):
            TowerOfHanoi(levels=0)
        with pytest.raises(CatalogError):
            TowerOfHanoi(levels=10)


class TestParsers:
    def test_parse_schedule_forms(self):
        assert isinstance(parse_schedule("gfs"), GFS)
        compact = parse_schedule("GFS:4x2")
        assert (compact.days_per_week, compact.weeks_per_cycle) == (4, 2)
        assert isinstance(parse_schedule("hanoi"), TowerOfHanoi)
        assert parse_schedule("hanoi:5").levels == 5

    def test_parse_schedule_rejects_garbage(self):
        for text in ("weekly", "gfs:x", "hanoi:"):
            with pytest.raises(CatalogError):
                parse_schedule(text)

    def test_parse_policy_forms(self):
        assert parse_policy("redundancy 3").count == 3
        assert parse_policy("window 7").days == 7
        assert parse_policy("window 7 days").days == 7
        assert parse_policy("recovery window of 14 days").days == 14

    def test_parse_policy_rejects_garbage(self):
        for text in ("keep everything", "redundancy", "window"):
            with pytest.raises(CatalogError):
                parse_policy(text)

    def test_policy_constructor_bounds(self):
        with pytest.raises(CatalogError):
            Redundancy(0)
        with pytest.raises(CatalogError):
            RecoveryWindow(-1)
