"""Parallel campaign days must produce the same catalog a serial run does.

Two identical two-volume campaigns (one logical, one image) run five
days, one with ``jobs=1`` and one with ``jobs=2``.  Every recorded set
must match on strategy, level, dates, bytes, files, and blocks — worker
processes change *where* a day executes, never *what* it produces.
Cartridge labels may differ (parallel jobs draw from disjoint
round-robin slices of the scratch pool instead of consuming it
sequentially), but allocation invariants and restores must still hold.
"""

from __future__ import annotations

import pytest

from repro.backup.verify import verify_trees
from repro.catalog import BackupCatalog
from repro.errors import TapeError
from repro.manager import GFS, CampaignDriver, MediaPool, restore_point_in_time
from repro.parallel import fork_available
from repro.units import MB
from repro.workload import WorkloadGenerator

from tests.conftest import make_fs

DAYS = 5

pytestmark = pytest.mark.skipif(not fork_available(), reason="needs fork")


def build_campaign(jobs, days=DAYS, tapes=40):
    catalog = BackupCatalog()
    pool = MediaPool(catalog)
    pool.add_blank(tapes, capacity=2 * MB)
    driver = CampaignDriver(catalog, pool, keep_daily_snapshots=True,
                            seed=7, jobs=jobs)
    for index, (name, strategy) in enumerate(
            [("home", "logical"), ("rlse", "image")]):
        fs = make_fs(name=name)
        tree = WorkloadGenerator(seed=20 + index).populate(fs, MB)
        fs.consistency_point()
        driver.add_volume(fs, tree, strategy, GFS(4, 2))
    driver.run(days)
    return catalog, pool, driver


@pytest.fixture(scope="module")
def campaigns():
    return build_campaign(jobs=1), build_campaign(jobs=2)


MATCH_FIELDS = ("fsid", "subtree", "strategy", "level", "day", "date",
                "bytes_to_tape", "files", "blocks", "base_set_id")


def test_parallel_sets_match_serial(campaigns):
    (cat_serial, _, _), (cat_parallel, _, _) = campaigns
    assert sorted(cat_serial.sets) == sorted(cat_parallel.sets)
    for set_id, serial_set in cat_serial.sets.items():
        parallel_set = cat_parallel.sets[set_id]
        for field in MATCH_FIELDS:
            assert getattr(parallel_set, field) == getattr(serial_set, field), \
                (set_id, field)
        assert len(parallel_set.cartridges) == len(serial_set.cartridges)


def test_parallel_dumpdates_match_serial(campaigns):
    (cat_serial, _, _), (cat_parallel, _, _) = campaigns
    assert cat_parallel.dumpdates.history("home", "/") \
        == cat_serial.dumpdates.history("home", "/")


def test_parallel_media_allocation_is_disjoint(campaigns):
    _, (cat_parallel, _, _) = campaigns
    owners = {}
    for backup_set in cat_parallel.sets.values():
        for label in backup_set.cartridges:
            assert label not in owners
            owners[label] = backup_set.set_id
            assert cat_parallel.cartridge_record(label).set_id \
                == backup_set.set_id


def test_restore_from_parallel_campaign_verifies(campaigns):
    _, (catalog, pool, driver) = campaigns
    for index, fsid in enumerate(("home", "rlse")):
        fs, plan = restore_point_in_time(catalog, pool, fsid, day=DAYS - 1)
        source = driver.volumes[index].fs
        problems = verify_trees(
            source.snapshot_view("day.%d" % (DAYS - 1)), fs)
        assert problems == []


def test_parallel_volume_state_advances(campaigns):
    (_, _, drv_serial), (_, _, drv_parallel) = campaigns
    # The rebound file systems carry the same aged data as serial ones.
    for volume_s, volume_p in zip(drv_serial.volumes, drv_parallel.volumes):
        assert verify_trees(volume_s.fs, volume_p.fs) == []


def test_partitioned_drives_demand_enough_scratch():
    catalog = BackupCatalog()
    pool = MediaPool(catalog)
    pool.add_blank(2, capacity=2 * MB)
    with pytest.raises(TapeError):
        pool.partitioned_drives(["a", "b", "c"])
    drives = pool.partitioned_drives(["a", "b"])
    labels = [c.label for d in drives for c in d.stacker.cartridges]
    assert sorted(labels) == sorted(pool.scratch_labels())
