"""Media-pool reservations: in-flight drives own their scratch media.

A long-lived scheduler stacks scratch cartridges into a job's drive
long before the job's bytes land.  These tests pin the reservation
contract: reserved media is excluded from later drive builds, refuses
to be recycled, and is released exactly at commit or explicit release.
"""

from __future__ import annotations

import pytest

from repro.catalog import BackupCatalog
from repro.errors import CatalogError, TapeError
from repro.manager import MediaPool
from repro.units import MB


@pytest.fixture()
def pool():
    catalog = BackupCatalog()
    pool = MediaPool(catalog)
    pool.add_blank(4, capacity=1 * MB)
    return pool


def record_set(catalog, day=0, level=0):
    return catalog.record_set(fsid="home", subtree="/", strategy="logical",
                              level=level, day=day, date=100 + day,
                              save=False)


class TestReservationLifecycle:
    def test_drive_without_reserve_leaves_pool_open(self, pool):
        drive = pool.drive_for_job("a")
        assert all(pool.reserved_by(c.label) is None
                   for c in drive.stacker.cartridges)
        # Serial callers can immediately build another full drive.
        assert len(pool.drive_for_job("b").stacker.cartridges) == 4

    def test_reserved_media_excluded_from_next_drive(self, pool):
        pool.drive_for_job("a", reserve=True)
        with pytest.raises(TapeError, match="no scratch cartridges"):
            pool.drive_for_job("b")

    def test_release_drive_frees_the_magazine(self, pool):
        drive = pool.drive_for_job("a", reserve=True)
        assert pool.reserved_by(drive.stacker.cartridges[0].label) == "a"
        pool.release_drive(drive)
        assert all(pool.reserved_by(c.label) is None
                   for c in drive.stacker.cartridges)
        assert len(pool.drive_for_job("b").stacker.cartridges) == 4

    def test_commit_releases_reservations(self, pool):
        drive = pool.drive_for_job("a", reserve=True)
        drive.write(b"x" * 4096)
        backup_set = record_set(pool.catalog)
        labels = pool.commit_job(drive, backup_set)
        assert len(labels) == 1
        # Every reservation is gone — written media is now allocated,
        # untouched media is scratch and buildable again.
        assert all(pool.reserved_by(c.label) is None
                   for c in drive.stacker.cartridges)
        assert len(pool.drive_for_job("b").stacker.cartridges) == 3

    def test_partitioned_drives_reserve_disjoint_slices(self, pool):
        first, second = pool.partitioned_drives(["a", "b"])
        labels_a = {c.label for c in first.stacker.cartridges}
        labels_b = {c.label for c in second.stacker.cartridges}
        assert not (labels_a & labels_b)
        for label in labels_a:
            assert pool.reserved_by(label) == "a"
        for label in labels_b:
            assert pool.reserved_by(label) == "b"
        with pytest.raises(TapeError):
            pool.drive_for_job("c")


class TestRecycleRefusal:
    def test_recycle_of_reserved_cartridge_refused(self, pool):
        # An in-flight job holds the scratch magazine; a retired set that
        # (still) lists one of those cartridges must not recycle it out
        # from under the job.
        drive = pool.drive_for_job("inflight", reserve=True)
        reserved_label = drive.stacker.cartridges[0].label
        retired = record_set(pool.catalog)
        retired.cartridges = [reserved_label]
        with pytest.raises(CatalogError) as excinfo:
            pool.recycle(retired)
        message = str(excinfo.value)
        assert "reserved" in message
        assert "inflight" in message
        assert reserved_label in message

    def test_recycle_succeeds_after_release(self, pool):
        drive = pool.drive_for_job("a", reserve=True)
        drive.write(b"y" * 4096)
        backup_set = record_set(pool.catalog)
        pool.commit_job(drive, backup_set)
        recycled = pool.recycle(backup_set)
        assert recycled == backup_set.cartridges
        for label in recycled:
            assert pool.catalog.cartridge_record(label).status == "scratch"
            assert pool.cartridge(label).used == 0
