"""Every fault class recovers one volume-day to oracle-identical state.

Each test runs the same volume-day twice on independently built but
identical filesystems and tape drives — once fault-free (the oracle),
once with a pinned :class:`FaultSpec` — via the very
:func:`run_volume_day_chaos` path campaigns use, then asserts the
recovered side is byte-identical: every cartridge's bytes, the volume's
on-disk blocks, the filesystem digest, and the timing payload.
"""

from __future__ import annotations

import pytest

from repro.backup import DumpDates
from repro.chaos import FaultSpec
from repro.chaos.campaign import run_volume_day_chaos
from repro.chaos.plan import (
    KIND_CORRUPT,
    KIND_CRASH,
    KIND_DISK_FAIL,
    KIND_EJECT,
    KIND_KILL,
    KIND_TORN_CP,
)
from repro.chaos.verify import filesystem_digest, volume_digest
from repro.units import MB
from repro.workload import WorkloadGenerator
from repro.workload.mutate import MutationConfig

from tests.conftest import make_drive, make_fs

TAPE_CAPACITY = 96 * 1024  # small cartridges: every dump spans several


def run_day(fault=None, nvram=True, mutate=True):
    """One volume's day-1 level-0 dump, optionally under ``fault``."""
    fs = make_fs(name="vol", nvram=nvram)
    generator = WorkloadGenerator(seed=5)
    tree = generator.populate(fs, MB)
    fs.consistency_point()
    drive = make_drive(name="t", tapes=24, capacity=TAPE_CAPACITY)
    mutation = MutationConfig(seed=99) if mutate else None
    fs, tree, drive, payload, events = run_volume_day_chaos(
        fs, tree, "logical", "/", 0, drive, "vol.d01", None, None,
        mutation, None, DumpDates(), None, None, fault)
    return fs, drive, payload, events


def fault_of(kind, **params):
    return FaultSpec("F.test.%s" % kind, 1, 0, kind, params)


def cartridge_bytes(drive):
    return [bytes(cart.data[:cart.used])
            for cart in drive.stacker.cartridges]


def assert_identical(oracle, chaos):
    """Byte-identity across every durable artifact of the day."""
    ofs, odrive, opayload, _ = oracle
    cfs, cdrive, cpayload, _ = chaos
    assert cartridge_bytes(cdrive) == cartridge_bytes(odrive)
    assert cdrive.stacker.next_slot == odrive.stacker.next_slot
    assert volume_digest(cfs.volume) == volume_digest(ofs.volume)
    assert filesystem_digest(cfs) == filesystem_digest(ofs)
    assert cpayload == opayload


@pytest.fixture(scope="module")
def oracle():
    return run_day(fault=None)


class TestTapeFaults:
    def test_kill_resume_append(self, oracle):
        chaos = run_day(fault_of(KIND_KILL, after_tape_ops=10))
        _, _, _, events = chaos
        assert [e["outcome"] for e in events] == ["hit"]
        assert events[0]["recovery"]["mechanism"] == "resume_append"
        assert_identical(oracle, chaos)

    def test_kill_partial_last_cartridge(self, oracle):
        # Kill deep enough into the stream that the cartridge loaded at
        # abort time is partially written — the resume must preserve its
        # prefix and append the identical remainder.
        chaos = run_day(fault_of(KIND_KILL, after_tape_ops=20))
        _, _, _, events = chaos
        assert events[0]["outcome"] == "hit"
        details = events[0]["recovery"]["details"]
        assert details["trusted_slots"] >= 2
        # The abort-time cartridge was only partially written: the
        # verified prefix is not a whole number of full cartridges.
        assert details["verified_bytes"] % TAPE_CAPACITY != 0
        assert_identical(oracle, chaos)

    def test_corrupt_rewind_rewrite(self, oracle):
        chaos = run_day(fault_of(KIND_CORRUPT, after_tape_ops=20,
                                 cartridge_back=1, offset_frac=0.5,
                                 xor=0x5A))
        _, _, _, events = chaos
        assert [e["outcome"] for e in events] == ["hit"]
        details = events[0]["recovery"]["details"]
        assert events[0]["recovery"]["mechanism"] == "rewind_rewrite"
        assert details["xor"] == 0x5A
        # The flipped byte was actually detected before the rewrite.
        assert details["mismatch_detected"] == details["cartridge"]
        assert_identical(oracle, chaos)

    def test_eject_reload_rewrite(self, oracle):
        chaos = run_day(fault_of(KIND_EJECT, after_tape_ops=20))
        _, _, _, events = chaos
        assert [e["outcome"] for e in events] == ["hit"]
        assert events[0]["recovery"]["mechanism"] == "reload_rewrite"
        assert events[0]["recovery"]["details"]["bytes_lost"] > 0
        assert_identical(oracle, chaos)

    def test_kill_beyond_stream_is_a_miss(self, oracle):
        chaos = run_day(fault_of(KIND_KILL, after_tape_ops=10 ** 6))
        _, _, _, events = chaos
        assert [e["outcome"] for e in events] == ["miss"]
        assert_identical(oracle, chaos)


class TestDiskFaults:
    def test_raid_reconstruct_and_repair(self, oracle):
        chaos = run_day(fault_of(
            KIND_DISK_FAIL, nblocks=3,
            draws=[(0.1, 0.2, 0.3), (0.9, 0.5, 0.7), (0.4, 0.9, 0.05)]))
        _, _, _, events = chaos
        assert [e["outcome"] for e in events] == ["hit"]
        recovery = events[0]["recovery"]
        assert recovery["mechanism"] == "raid_reconstruct"
        assert recovery["details"]["repaired"] == 3
        # Byte-identity of tape AND volume proves both halves: the dump
        # read reconstructed data, and the repair rewrote the bad blocks
        # with exactly the reconstructed contents.
        assert_identical(oracle, chaos)


class TestCrashFaults:
    def test_crash_nvram_replay(self, oracle):
        chaos = run_day(fault_of(KIND_CRASH))
        fs, _, _, events = chaos
        assert [e["outcome"] for e in events] == ["hit"]
        recovery = events[0]["recovery"]
        assert recovery["mechanism"] == "nvram_replay"
        assert recovery["details"]["replayed_ops"] > 0
        assert fs.nvram is not None and len(fs.nvram) == 0
        assert_identical(oracle, chaos)

    def test_torn_cp_recovers(self, oracle):
        chaos = run_day(fault_of(KIND_TORN_CP, fuse_blocks=8))
        _, _, _, events = chaos
        assert [e["outcome"] for e in events] == ["hit"]
        assert "torn_write" in events[0]["recovery"]["details"]
        assert_identical(oracle, chaos)

    def test_crash_without_nvram_is_a_miss(self):
        oracle_off = run_day(fault=None, nvram=False)
        chaos = run_day(fault_of(KIND_CRASH), nvram=False)
        _, _, _, events = chaos
        assert [e["outcome"] for e in events] == ["miss"]
        assert events[0]["reason"] == "no_nvram"
        assert_identical(oracle_off, chaos)
