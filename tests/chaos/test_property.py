"""Property: random fault interleavings still converge to the oracle.

Several chaos seeds, each planning a different random interleaving of
disk failures, cartridge ejects, and filer crashes across a multi-day
GFS campaign, must all finish byte-identical to the fault-free oracle
of the same workload seeds — volume contents, catalog, and media state.
"""

from __future__ import annotations

import pytest

from repro.chaos import ChaosPlan, compare_digests
from repro.chaos.plan import KIND_CRASH, KIND_DISK_FAIL, KIND_EJECT

from tests.chaos.conftest import run_chaos_campaign

DAYS = 5
KINDS = (KIND_DISK_FAIL, KIND_EJECT, KIND_CRASH)


@pytest.fixture(scope="module")
def oracle(tmp_path_factory):
    plan = ChaosPlan(0, rate=1.0, kinds=KINDS, enabled=False)
    return run_chaos_campaign(
        str(tmp_path_factory.mktemp("prop_oracle")), plan, days=DAYS)


@pytest.mark.parametrize("chaos_seed", [3, 11, 29])
def test_interleaving_converges_to_oracle(tmp_path, oracle, chaos_seed):
    plan = ChaosPlan(chaos_seed, rate=1.0, kinds=KINDS)
    chaos = run_chaos_campaign(str(tmp_path), plan, days=DAYS)
    hits = [e for e in chaos.events if e["outcome"] == "hit"]
    assert hits, "seed %d planned no strikeable faults" % chaos_seed
    assert compare_digests(oracle.digests(), chaos.digests()) == []
