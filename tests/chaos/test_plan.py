"""The injection plan: pure-function determinism and serialization."""

from __future__ import annotations

import pytest

from repro.chaos import FAULT_KINDS, TAPE_FAULTS, ChaosPlan, FaultSpec
from repro.chaos.plan import (
    KIND_CORRUPT,
    KIND_CRASH,
    KIND_DISK_FAIL,
    KIND_EJECT,
    KIND_KILL,
    KIND_TORN_CP,
)
from repro.errors import ReproError

DAYS, VOLUMES = 30, 4


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        first = ChaosPlan(7).to_json(DAYS, VOLUMES)
        second = ChaosPlan(7).to_json(DAYS, VOLUMES)
        assert first == second

    def test_different_seeds_differ(self):
        assert (ChaosPlan(7).to_json(DAYS, VOLUMES)
                != ChaosPlan(8).to_json(DAYS, VOLUMES))

    def test_repeated_queries_are_stable(self):
        plan = ChaosPlan(11)
        for day in range(DAYS):
            for index in range(VOLUMES):
                first = plan.fault_for(day, index)
                second = plan.fault_for(day, index)
                if first is None:
                    assert second is None
                else:
                    assert first.to_dict() == second.to_dict()

    def test_cells_are_independent(self):
        # Growing the grid never perturbs previously planned cells.
        small = ChaosPlan(13).faults_for_campaign(5, 2)
        large = ChaosPlan(13).faults_for_campaign(10, 3)
        large_by_id = {f.fault_id: f.to_dict() for f in large}
        for fault in small:
            assert large_by_id[fault.fault_id] == fault.to_dict()

    def test_day_zero_is_exempt(self):
        plan = ChaosPlan(3, rate=1.0)
        assert all(plan.fault_for(0, index) is None for index in range(8))
        assert plan.fault_for(1, 0) is not None

    def test_disabled_plan_never_fires(self):
        plan = ChaosPlan(3, rate=1.0, enabled=False)
        assert plan.faults_for_campaign(DAYS, VOLUMES) == []

    def test_rate_bounds(self):
        assert ChaosPlan(5, rate=0.0).faults_for_campaign(DAYS, VOLUMES) == []
        dense = ChaosPlan(5, rate=1.0).faults_for_campaign(DAYS, VOLUMES)
        assert len(dense) == (DAYS - 1) * VOLUMES  # every cell but day 0

    def test_kind_restriction(self):
        plan = ChaosPlan(9, rate=1.0, kinds=(KIND_CRASH, KIND_DISK_FAIL))
        kinds = {f.kind for f in plan.faults_for_campaign(DAYS, VOLUMES)}
        assert kinds <= {KIND_CRASH, KIND_DISK_FAIL}

    def test_all_kinds_eventually_drawn(self):
        plan = ChaosPlan(9, rate=1.0)
        kinds = {f.kind for f in plan.faults_for_campaign(60, 4)}
        assert kinds == set(FAULT_KINDS)


class TestParams:
    def kinds_of(self, seed):
        return {f.kind: f for f in
                ChaosPlan(seed, rate=1.0).faults_for_campaign(60, 4)}

    def test_every_kind_has_wellformed_params(self):
        by_kind = self.kinds_of(21)
        assert by_kind[KIND_KILL].params["after_tape_ops"] >= 1
        assert by_kind[KIND_CORRUPT].params["after_tape_ops"] >= 2
        assert 1 <= by_kind[KIND_CORRUPT].params["xor"] <= 255
        assert 0.0 <= by_kind[KIND_CORRUPT].params["offset_frac"] < 1.0
        assert by_kind[KIND_EJECT].params["after_tape_ops"] >= 2
        draws = by_kind[KIND_DISK_FAIL].params["draws"]
        assert len(draws) == by_kind[KIND_DISK_FAIL].params["nblocks"]
        assert all(0.0 <= frac < 1.0
                   for draw in draws for frac in draw)
        assert by_kind[KIND_TORN_CP].params["fuse_blocks"] >= 1
        assert by_kind[KIND_CRASH].params == {}

    def test_tape_faults_subset(self):
        assert set(TAPE_FAULTS) == {KIND_KILL, KIND_CORRUPT, KIND_EJECT}
        assert set(TAPE_FAULTS) < set(FAULT_KINDS)


class TestSerialization:
    def test_json_round_trip_reproduces_schedule(self):
        plan = ChaosPlan(17, rate=0.7, kinds=(KIND_KILL, KIND_CRASH))
        text = plan.to_json(DAYS, VOLUMES)
        loaded = ChaosPlan.from_json(text)
        assert loaded.to_json(DAYS, VOLUMES) == text

    def test_fault_spec_round_trip(self):
        fault = ChaosPlan(17, rate=1.0).fault_for(3, 1)
        assert FaultSpec.from_dict(fault.to_dict()).to_dict() == fault.to_dict()

    def test_from_json_rejects_other_documents(self):
        with pytest.raises(ReproError):
            ChaosPlan.from_json('{"something": "else"}')


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            ChaosPlan(1, kinds=("meteor",))
        with pytest.raises(ReproError):
            FaultSpec("F", 1, 0, "meteor")

    def test_empty_kinds_rejected(self):
        with pytest.raises(ReproError):
            ChaosPlan(1, kinds=())

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ReproError):
            ChaosPlan(1, rate=1.5)
