"""Shared builders for the chaos-plane tests.

Every test here compares a fault-injected run against a fault-free
oracle built by the *same* code with the plan disabled, so a helper that
constructs one complete campaign (catalog + media pool + two volumes,
one logical and one image, with NVRAM attached) is the common currency.
"""

from __future__ import annotations

import os

from repro.catalog import BackupCatalog
from repro.chaos import ChaosCampaignDriver, ChaosPlan, campaign_state_digests
from repro.manager import MediaPool, parse_schedule
from repro.nvram.log import NvramLog
from repro.raid.layout import make_geometry
from repro.raid.volume import RaidVolume
from repro.storage.persist import save_volume
from repro.units import MB
from repro.wafl.filesystem import WaflFilesystem
from repro.workload import WorkloadGenerator

#: The standard two-volume campaign: one of each backup strategy.
CAMPAIGN_VOLUMES = (("home", "logical"), ("rlse", "image"))


class CampaignRun:
    """One finished campaign plus the paths of its durable artifacts."""

    def __init__(self, root, driver, catalog_path, pool_path, volume_paths):
        self.root = root
        self.driver = driver
        self.catalog_path = catalog_path
        self.pool_path = pool_path
        self.volume_paths = volume_paths

    @property
    def events(self):
        return self.driver.events

    def digests(self):
        return campaign_state_digests(self.catalog_path, self.pool_path,
                                      self.volume_paths)


def run_chaos_campaign(root, plan, days=6, seed=41, jobs=1,
                       nbytes=MB, tape_capacity=MB, tapes=60,
                       schedule="gfs:7x4", events_path=None) -> CampaignRun:
    """Build, populate, and run one campaign under ``plan``.

    The oracle run is the same call with ``plan.enabled`` False — both
    paths execute :func:`run_volume_day_chaos` for every volume-day.
    """
    os.makedirs(root, exist_ok=True)
    catalog_path = os.path.join(root, "catalog.json")
    pool_path = os.path.join(root, "pool.med")
    catalog = BackupCatalog(catalog_path)
    pool = MediaPool(catalog)
    pool.add_blank(tapes, capacity=tape_capacity)
    driver = ChaosCampaignDriver(catalog, pool, plan,
                                 events_path=events_path,
                                 seed=seed, jobs=jobs)
    for index, (name, strategy) in enumerate(CAMPAIGN_VOLUMES):
        volume = RaidVolume(make_geometry(2, 4, 2500), name=name)
        fs = WaflFilesystem.format(volume, nvram=NvramLog())
        generator = WorkloadGenerator(seed=seed + index)
        tree = generator.populate(fs, nbytes)
        fs.consistency_point()
        driver.add_volume(fs, tree, strategy, parse_schedule(schedule))
    driver.run(days)
    pool.save(pool_path)
    volume_paths = {}
    for (name, _strategy), state in zip(CAMPAIGN_VOLUMES, driver.volumes):
        state.fs.consistency_point()
        path = os.path.join(root, "%s.vol" % name)
        save_volume(state.fs.volume, path)
        volume_paths[name] = path
    return CampaignRun(root, driver, catalog_path, pool_path, volume_paths)
