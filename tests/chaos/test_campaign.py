"""Chaos campaigns converge to the fault-free oracle, byte for byte.

The property under test is the tentpole claim: a multi-day GFS campaign
with seeded random faults injected — and recovered — at arbitrary
volume-days finishes with catalog, media pool, and volume images
byte-identical to an oracle campaign of the same workload seeds that
never faulted.  Serial and ``jobs=2`` runs of the same chaos seed must
also be byte-identical to *each other*, fault event stream included.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.chaos import ChaosPlan, compare_digests, restore_drill
from repro.chaos.verify import volume_digest
from repro.manager import restore_point_in_time

from tests.chaos.conftest import run_chaos_campaign

DAYS = 6
CHAOS_SEED = 7


@pytest.fixture(scope="module")
def oracle(tmp_path_factory):
    plan = ChaosPlan(CHAOS_SEED, rate=1.0, enabled=False)
    return run_chaos_campaign(
        str(tmp_path_factory.mktemp("oracle")), plan, days=DAYS)


@pytest.fixture(scope="module")
def chaos(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("chaos"))
    plan = ChaosPlan(CHAOS_SEED, rate=1.0)
    return run_chaos_campaign(root, plan, days=DAYS,
                              events_path=os.path.join(root, "chaos.jsonl"))


@pytest.fixture(scope="module")
def chaos_parallel(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("chaos_par"))
    plan = ChaosPlan(CHAOS_SEED, rate=1.0)
    return run_chaos_campaign(root, plan, days=DAYS, jobs=2,
                              events_path=os.path.join(root, "chaos.jsonl"))


class TestOracleConvergence:
    def test_faults_were_actually_injected(self, chaos):
        hits = [e for e in chaos.events if e["outcome"] == "hit"]
        assert len(hits) >= 3
        # Both volumes took faults, and more than one kind fired.
        assert len({e["fsid"] for e in hits}) == 2
        assert len({e["kind"] for e in hits}) >= 2

    def test_recovered_state_matches_oracle_byte_for_byte(self, oracle,
                                                          chaos):
        assert compare_digests(oracle.digests(), chaos.digests()) == []

    def test_catalog_file_identical(self, oracle, chaos):
        with open(oracle.catalog_path, "rb") as left, \
                open(chaos.catalog_path, "rb") as right:
            assert left.read() == right.read()


class TestSerialParallelIdentity:
    def test_artifacts_identical(self, chaos, chaos_parallel):
        assert compare_digests(chaos.digests(),
                               chaos_parallel.digests()) == []

    def test_event_streams_identical(self, chaos, chaos_parallel):
        assert chaos.events == chaos_parallel.events

    def test_event_log_files_identical(self, chaos, chaos_parallel):
        left = open(os.path.join(chaos.root, "chaos.jsonl")).read()
        right = open(os.path.join(chaos_parallel.root, "chaos.jsonl")).read()
        assert left and left == right


class TestEventStream:
    def test_sequence_numbers_are_gapless(self, chaos):
        assert [e["seq"] for e in chaos.events] == list(
            range(1, len(chaos.events) + 1))

    def test_every_event_names_a_planned_fault(self, chaos):
        plan = ChaosPlan(CHAOS_SEED, rate=1.0)
        planned = {f.fault_id: f for f in plan.faults_for_campaign(DAYS, 2)}
        for event in chaos.events:
            fault = planned[event["fault_id"]]
            assert event["kind"] == fault.kind
            assert event["params"] == fault.params
            assert event["outcome"] in ("hit", "miss")
        # Every planned fault produced exactly one event.
        assert len(chaos.events) == len(planned)

    def test_events_jsonl_matches_memory(self, chaos):
        with open(os.path.join(chaos.root, "chaos.jsonl")) as handle:
            lines = [json.loads(line) for line in handle]
        # Round-trip the in-memory events too: JSON has no tuples.
        assert lines == json.loads(json.dumps(chaos.events))


class TestRestoreDrill:
    @pytest.mark.parametrize("fsid", ["home", "rlse"])
    def test_aborted_restore_retries_to_identical_volume(self, chaos, fsid):
        catalog = chaos.driver.catalog
        pool = chaos.driver.pool
        fs, plan, report = restore_drill(catalog, pool, fsid,
                                         kill_after_tape_ops=3)
        assert report.mechanism == "restart_restore"
        assert not report.details["aborted_completed"]
        assert report.details["aborted_after_tape_ops"] >= 3
        # The retry must land exactly what an uninterrupted restore does.
        straight, _ = restore_point_in_time(catalog, pool, fsid)
        assert volume_digest(fs.volume) == volume_digest(straight.volume)
