"""The append-only catalog journal: O(delta) commits, crash recovery.

The crash cases are the satellite's acceptance list: a truncated tail,
a torn write mid-append, and a compaction interrupted between the image
rename and the journal truncate must all recover to the last durable
state on load.  A two-writer test hammers lock-protected appends from
two processes and requires every journal line to survive complete.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.catalog import BackupCatalog, FileLock
from repro.catalog.journal import CatalogJournal, journal_path
from repro.errors import CatalogError

APPENDS = 100


def journaled_catalog(tmp_path, **kwargs):
    path = str(tmp_path / "catalog.json")
    return BackupCatalog(path).use_journal(**kwargs), path


def record_day(catalog, day, fsid="home"):
    return catalog.record_set(fsid=fsid, subtree="/", strategy="logical",
                              level=0, day=day, date=100 + day, save=False)


class TestJournalMode:
    def test_commit_appends_instead_of_rewriting(self, tmp_path):
        catalog, path = journaled_catalog(tmp_path)
        catalog.save()  # seed the image
        image_before = os.path.getmtime(path)
        record_day(catalog, 0)
        written = catalog.commit_dirty()
        assert written == 2  # one meta record, one set upsert
        assert os.path.getmtime(path) == image_before
        assert os.path.getsize(journal_path(path)) > 0

    def test_load_replays_journal_over_image(self, tmp_path):
        catalog, path = journaled_catalog(tmp_path)
        record_day(catalog, 0)
        catalog.save()  # day 0 lands in the image
        record_day(catalog, 1)
        catalog.set_policy("home", "/", "redundancy 2", save=False)
        catalog.commit_dirty()  # day 1 + policy live only in the journal
        loaded = BackupCatalog.load(path)
        assert sorted(loaded.sets) == ["S0001", "S0002"]
        assert loaded.next_set == 3
        assert loaded.policy_for("home") == "redundancy 2"

    def test_commit_past_threshold_compacts(self, tmp_path):
        catalog, path = journaled_catalog(tmp_path, compact_after=3)
        catalog.save()
        for day in range(2):
            record_day(catalog, day)
            catalog.commit_dirty()
        # Two commits left four records (meta + set each); the next
        # commit finds the threshold exceeded and must fold everything
        # into the image and truncate the sidecar instead of appending.
        record_day(catalog, 2)
        catalog.commit_dirty()
        assert os.path.getsize(journal_path(path)) == 0
        record_day(catalog, 3)
        catalog.commit_dirty()  # appends resume on the emptied journal
        assert os.path.getsize(journal_path(path)) > 0
        assert sorted(BackupCatalog.load(path).sets) == [
            "S0001", "S0002", "S0003", "S0004"]

    def test_deferred_sync_still_lands_on_disk(self, tmp_path):
        catalog, path = journaled_catalog(tmp_path)
        catalog.save()
        record_day(catalog, 0)
        catalog.commit_dirty(sync=False)
        catalog.sync_journal()
        assert sorted(BackupCatalog.load(path).sets) == ["S0001"]

    def test_in_memory_catalog_cannot_journal(self):
        with pytest.raises(CatalogError):
            BackupCatalog().use_journal()


class TestCrashRecovery:
    def build(self, tmp_path, days=3):
        catalog, path = journaled_catalog(tmp_path)
        catalog.save()
        for day in range(days):
            record_day(catalog, day)
            catalog.commit_dirty()
        return catalog, path

    def test_truncated_tail_recovers_previous_commit(self, tmp_path):
        _, path = self.build(tmp_path)
        journal = journal_path(path)
        with open(journal, "rb") as handle:
            blob = handle.read()
        # Chop into the middle of the last line: the crash happened
        # mid-append, after two whole day-commits had been fsync'd.
        with open(journal, "wb") as handle:
            handle.write(blob[:-10])
        loaded = BackupCatalog.load(path)
        assert "S0003" not in loaded.sets
        assert sorted(loaded.sets) == ["S0001", "S0002"]

    def test_torn_write_discards_tail_from_first_bad_line(self, tmp_path):
        _, path = self.build(tmp_path)
        journal = journal_path(path)
        with open(journal, "a") as handle:
            # An undecodable line followed by a well-formed one: a single
            # appender can only tear the tail, so replay must stop at the
            # first bad line and ignore everything after it.
            handle.write('{"op": "set", "data"\n')
            handle.write(json.dumps({"op": "policy", "key": "home|/",
                                     "text": "window 9 days"}) + "\n")
        loaded = BackupCatalog.load(path)
        assert sorted(loaded.sets) == ["S0001", "S0002", "S0003"]
        assert loaded.policy_for("home") is None

    def test_unknown_op_ends_replay(self, tmp_path):
        _, path = self.build(tmp_path)
        with open(journal_path(path), "a") as handle:
            handle.write(json.dumps({"op": "shred", "data": {}}) + "\n")
        loaded = BackupCatalog.load(path)
        assert sorted(loaded.sets) == ["S0001", "S0002", "S0003"]

    def test_interrupted_compaction_replays_idempotently(self, tmp_path):
        catalog, path = self.build(tmp_path)
        with open(journal_path(path), "rb") as handle:
            blob = handle.read()
        reference = BackupCatalog.load(path)
        # Compaction writes the image first and truncates the journal
        # second; crashing in between leaves the old journal alongside
        # the new image.  Recreate exactly that state.
        catalog.save()
        with open(journal_path(path), "wb") as handle:
            handle.write(blob)
        loaded = BackupCatalog.load(path)
        assert sorted(loaded.sets) == sorted(reference.sets)
        assert loaded.next_set == reference.next_set
        for set_id, backup_set in reference.sets.items():
            assert loaded.sets[set_id].to_dict() == backup_set.to_dict()

    def test_empty_journal_is_a_clean_load(self, tmp_path):
        _, path = self.build(tmp_path)
        with open(journal_path(path), "w"):
            pass
        # Everything before the last compaction lives in the image; an
        # empty sidecar (fresh truncate) must not confuse the loader.
        loaded = BackupCatalog.load(path)
        assert loaded.sets == {}  # nothing was compacted into the image


class TestBatchAtomicity:
    """One commit = one ``batch`` line: torn writes lose all or nothing.

    The half-commit this guards against: a backup set upserted without
    the cartridge records its chain needs, which a later ``chain_for``
    would hand to a restore that then can't find its media.
    """

    def build_two_commits(self, tmp_path):
        catalog, path = journaled_catalog(tmp_path)
        catalog.save()
        catalog.register_cartridge(100, label="T1")
        first = catalog.record_set("home", "/", "logical", 0, 1, 100,
                                   cartridges=["T1"], save=False)
        catalog.commit_dirty()
        catalog.register_cartridge(100, label="T2")
        second = catalog.record_set("home", "/", "logical", 1, 2, 200,
                                    cartridges=["T2"], save=False)
        catalog.commit_dirty()
        return path, first.set_id, second.set_id

    def test_one_commit_is_one_line(self, tmp_path):
        path, _, _ = self.build_two_commits(tmp_path)
        with open(journal_path(path)) as handle:
            lines = [json.loads(line) for line in handle]
        assert [line["op"] for line in lines] == ["batch", "batch"]
        # Each batch carries the whole commit: meta + set + media.
        assert all(len(line["records"]) == 3 for line in lines)

    def test_torn_write_at_every_offset_is_all_or_nothing(self, tmp_path):
        path, first, second = self.build_two_commits(tmp_path)
        journal = journal_path(path)
        with open(journal, "rb") as handle:
            blob = handle.read()
        last_line_start = blob.rstrip(b"\n").rfind(b"\n") + 1
        for cut in range(last_line_start, len(blob) + 1):
            with open(journal, "wb") as handle:
                handle.write(blob[:cut])
            loaded = BackupCatalog.load(path)
            chain = [s.set_id for s in loaded.chain_for("home").sets]
            if cut < len(blob):
                # Torn second commit: no trace of it may surface —
                # not the set, not its cartridge, not the id counter.
                assert sorted(loaded.sets) == [first]
                assert sorted(loaded.media) == ["T1"]
                assert chain == [first]
                assert loaded.next_set == 2
            else:
                assert sorted(loaded.sets) == sorted([first, second])
                assert sorted(loaded.media) == ["T1", "T2"]
                assert chain == [first, second]

    def test_crash_before_deferred_sync_never_half_commits(self, tmp_path):
        # commit_dirty(sync=False) leaves the fsync to sync_journal; a
        # crash in that window can persist any byte prefix of the
        # commit's line.  chain_for must see the whole commit or none.
        path, first, _ = self.build_two_commits(tmp_path)
        catalog = BackupCatalog.load(path).use_journal()
        catalog.register_cartridge(100, label="T3")
        third = catalog.record_set("home", "/", "logical", 2, 3, 300,
                                   cartridges=["T3"], save=False)
        catalog.commit_dirty(sync=False)
        journal = journal_path(path)
        with open(journal, "rb") as handle:
            blob = handle.read()
        last_line_start = blob.rstrip(b"\n").rfind(b"\n") + 1
        for cut in (last_line_start, last_line_start + 1,
                    (last_line_start + len(blob)) // 2, len(blob) - 1):
            with open(journal, "wb") as handle:
                handle.write(blob[:cut])
            loaded = BackupCatalog.load(path)
            assert third.set_id not in loaded.sets
            assert "T3" not in loaded.media
            chain = loaded.chain_for("home")
            assert [s.set_id for s in chain.sets] != [third.set_id]
            assert all(label != "T3" for label in chain.cartridges)

    def test_batch_records_weigh_toward_compaction(self, tmp_path):
        # Compaction triggers on upsert count, not line count: two
        # 3-record batches cross a threshold of 5.
        catalog, path = journaled_catalog(tmp_path, compact_after=5)
        catalog.save()
        for day in range(2):
            catalog.register_cartridge(100, label="T%d" % day)
            catalog.record_set("home", "/", "logical", 0, day, 100 + day,
                               cartridges=["T%d" % day], save=False)
            catalog.commit_dirty()
        catalog.record_set("home", "/", "logical", 0, 2, 102, save=False)
        catalog.commit_dirty()  # 6 >= 5: folds into the image
        assert os.path.getsize(journal_path(path)) == 0
        assert sorted(BackupCatalog.load(path).sets) == [
            "S0001", "S0002", "S0003"]

    def test_batch_may_not_nest_or_hold_unknown_ops(self):
        from repro.catalog.journal import encode_record
        with pytest.raises(ValueError):
            encode_record({"op": "batch",
                           "records": [{"op": "batch", "records": []}]})
        with pytest.raises(ValueError):
            encode_record({"op": "batch", "records": [{"op": "shred"}]})

    def test_legacy_bare_records_still_replay(self, tmp_path):
        # Journals written before batch commits (one upsert per line)
        # must keep loading.
        catalog, path = journaled_catalog(tmp_path)
        catalog.save()
        scratch = BackupCatalog()
        cartridge = scratch.register_cartridge(100, label="T1")
        backup_set = record_day(scratch, 0)
        journal = CatalogJournal(journal_path(path))
        journal.append([
            {"op": "meta", "next_set": 2, "next_cartridge": 2},
            {"op": "media", "data": cartridge.to_dict()},
            {"op": "set", "data": backup_set.to_dict()},
        ])
        loaded = BackupCatalog.load(path)
        assert sorted(loaded.sets) == ["S0001"]
        assert sorted(loaded.media) == ["T1"]
        assert loaded.next_set == 2


def _journal_append_worker(path, writer, rounds):
    journal = CatalogJournal(path)
    for index in range(rounds):
        with FileLock(path + ".lock", timeout=30.0):
            journal.append([{"op": "policy",
                             "key": "w%d-%03d" % (writer, index),
                             "text": "p"}])
            # Widen the race window: unlocked concurrent appends would
            # interleave partial lines here.
            time.sleep(0.0002)


class TestTwoWriters:
    def test_locked_appends_never_tear(self, tmp_path):
        path = str(tmp_path / "catalog.json.journal")
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_journal_append_worker,
                        args=(path, writer, APPENDS))
            for writer in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        records = CatalogJournal(path).load()
        # Every append from both writers survives as a complete line —
        # no lost updates, no torn interleavings cutting replay short.
        assert len(records) == 2 * APPENDS
        keys = {record["key"] for record in records}
        assert len(keys) == 2 * APPENDS
