"""The append-only catalog journal: O(delta) commits, crash recovery.

The crash cases are the satellite's acceptance list: a truncated tail,
a torn write mid-append, and a compaction interrupted between the image
rename and the journal truncate must all recover to the last durable
state on load.  A two-writer test hammers lock-protected appends from
two processes and requires every journal line to survive complete.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.catalog import BackupCatalog, FileLock
from repro.catalog.journal import CatalogJournal, journal_path
from repro.errors import CatalogError

APPENDS = 100


def journaled_catalog(tmp_path, **kwargs):
    path = str(tmp_path / "catalog.json")
    return BackupCatalog(path).use_journal(**kwargs), path


def record_day(catalog, day, fsid="home"):
    return catalog.record_set(fsid=fsid, subtree="/", strategy="logical",
                              level=0, day=day, date=100 + day, save=False)


class TestJournalMode:
    def test_commit_appends_instead_of_rewriting(self, tmp_path):
        catalog, path = journaled_catalog(tmp_path)
        catalog.save()  # seed the image
        image_before = os.path.getmtime(path)
        record_day(catalog, 0)
        written = catalog.commit_dirty()
        assert written == 2  # one meta record, one set upsert
        assert os.path.getmtime(path) == image_before
        assert os.path.getsize(journal_path(path)) > 0

    def test_load_replays_journal_over_image(self, tmp_path):
        catalog, path = journaled_catalog(tmp_path)
        record_day(catalog, 0)
        catalog.save()  # day 0 lands in the image
        record_day(catalog, 1)
        catalog.set_policy("home", "/", "redundancy 2", save=False)
        catalog.commit_dirty()  # day 1 + policy live only in the journal
        loaded = BackupCatalog.load(path)
        assert sorted(loaded.sets) == ["S0001", "S0002"]
        assert loaded.next_set == 3
        assert loaded.policy_for("home") == "redundancy 2"

    def test_commit_past_threshold_compacts(self, tmp_path):
        catalog, path = journaled_catalog(tmp_path, compact_after=3)
        catalog.save()
        for day in range(2):
            record_day(catalog, day)
            catalog.commit_dirty()
        # Two commits left four records (meta + set each); the next
        # commit finds the threshold exceeded and must fold everything
        # into the image and truncate the sidecar instead of appending.
        record_day(catalog, 2)
        catalog.commit_dirty()
        assert os.path.getsize(journal_path(path)) == 0
        record_day(catalog, 3)
        catalog.commit_dirty()  # appends resume on the emptied journal
        assert os.path.getsize(journal_path(path)) > 0
        assert sorted(BackupCatalog.load(path).sets) == [
            "S0001", "S0002", "S0003", "S0004"]

    def test_deferred_sync_still_lands_on_disk(self, tmp_path):
        catalog, path = journaled_catalog(tmp_path)
        catalog.save()
        record_day(catalog, 0)
        catalog.commit_dirty(sync=False)
        catalog.sync_journal()
        assert sorted(BackupCatalog.load(path).sets) == ["S0001"]

    def test_in_memory_catalog_cannot_journal(self):
        with pytest.raises(CatalogError):
            BackupCatalog().use_journal()


class TestCrashRecovery:
    def build(self, tmp_path, days=3):
        catalog, path = journaled_catalog(tmp_path)
        catalog.save()
        for day in range(days):
            record_day(catalog, day)
            catalog.commit_dirty()
        return catalog, path

    def test_truncated_tail_recovers_previous_commit(self, tmp_path):
        _, path = self.build(tmp_path)
        journal = journal_path(path)
        with open(journal, "rb") as handle:
            blob = handle.read()
        # Chop into the middle of the last line: the crash happened
        # mid-append, after two whole day-commits had been fsync'd.
        with open(journal, "wb") as handle:
            handle.write(blob[:-10])
        loaded = BackupCatalog.load(path)
        assert "S0003" not in loaded.sets
        assert sorted(loaded.sets) == ["S0001", "S0002"]

    def test_torn_write_discards_tail_from_first_bad_line(self, tmp_path):
        _, path = self.build(tmp_path)
        journal = journal_path(path)
        with open(journal, "a") as handle:
            # An undecodable line followed by a well-formed one: a single
            # appender can only tear the tail, so replay must stop at the
            # first bad line and ignore everything after it.
            handle.write('{"op": "set", "data"\n')
            handle.write(json.dumps({"op": "policy", "key": "home|/",
                                     "text": "window 9 days"}) + "\n")
        loaded = BackupCatalog.load(path)
        assert sorted(loaded.sets) == ["S0001", "S0002", "S0003"]
        assert loaded.policy_for("home") is None

    def test_unknown_op_ends_replay(self, tmp_path):
        _, path = self.build(tmp_path)
        with open(journal_path(path), "a") as handle:
            handle.write(json.dumps({"op": "shred", "data": {}}) + "\n")
        loaded = BackupCatalog.load(path)
        assert sorted(loaded.sets) == ["S0001", "S0002", "S0003"]

    def test_interrupted_compaction_replays_idempotently(self, tmp_path):
        catalog, path = self.build(tmp_path)
        with open(journal_path(path), "rb") as handle:
            blob = handle.read()
        reference = BackupCatalog.load(path)
        # Compaction writes the image first and truncates the journal
        # second; crashing in between leaves the old journal alongside
        # the new image.  Recreate exactly that state.
        catalog.save()
        with open(journal_path(path), "wb") as handle:
            handle.write(blob)
        loaded = BackupCatalog.load(path)
        assert sorted(loaded.sets) == sorted(reference.sets)
        assert loaded.next_set == reference.next_set
        for set_id, backup_set in reference.sets.items():
            assert loaded.sets[set_id].to_dict() == backup_set.to_dict()

    def test_empty_journal_is_a_clean_load(self, tmp_path):
        _, path = self.build(tmp_path)
        with open(journal_path(path), "w"):
            pass
        # Everything before the last compaction lives in the image; an
        # empty sidecar (fresh truncate) must not confuse the loader.
        loaded = BackupCatalog.load(path)
        assert loaded.sets == {}  # nothing was compacted into the image


def _journal_append_worker(path, writer, rounds):
    journal = CatalogJournal(path)
    for index in range(rounds):
        with FileLock(path + ".lock", timeout=30.0):
            journal.append([{"op": "policy",
                             "key": "w%d-%03d" % (writer, index),
                             "text": "p"}])
            # Widen the race window: unlocked concurrent appends would
            # interleave partial lines here.
            time.sleep(0.0002)


class TestTwoWriters:
    def test_locked_appends_never_tear(self, tmp_path):
        path = str(tmp_path / "catalog.json.journal")
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_journal_append_worker,
                        args=(path, writer, APPENDS))
            for writer in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        records = CatalogJournal(path).load()
        # Every append from both writers survives as a complete line —
        # no lost updates, no torn interleavings cutting replay short.
        assert len(records) == 2 * APPENDS
        keys = {record["key"] for record in records}
        assert len(keys) == 2 * APPENDS
