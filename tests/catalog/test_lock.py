"""The catalog commit lock: mutual exclusion across processes.

The two-writer test is the satellite's acceptance case: two processes
hammer lock-protected read-modify-write cycles on one file and the
total must show no lost update.  The rest pins the FileLock API —
re-entrancy, timeout diagnostics, and that ``BackupCatalog.save`` goes
through the lock at all.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.catalog import CATALOG_VERSION, BackupCatalog, FileLock
from repro.errors import CatalogError

INCREMENTS = 200


def _locked_counter_worker(path, rounds):
    """Read-modify-write ``rounds`` increments under the lock."""
    for _ in range(rounds):
        with FileLock(path + ".lock", timeout=30.0):
            with open(path) as handle:
                value = int(handle.read())
            # Widen the race window: without the lock, concurrent
            # writers routinely clobber each other here.
            time.sleep(0.0002)
            with open(path, "w") as handle:
                handle.write(str(value + 1))


def _hold_lock_worker(path, acquired, release):
    with FileLock(path, timeout=30.0):
        acquired.set()
        release.wait(30.0)


def _catalog_writer_worker(path, fsid, days):
    catalog = BackupCatalog.load(path)
    for day in days:
        catalog.record_set(fsid=fsid, subtree="/", strategy="logical",
                           level=0, day=day, date=100 + day, save=False)
    catalog.save()


class TestTwoWriters:
    def test_no_lost_updates_across_processes(self, tmp_path):
        path = str(tmp_path / "counter")
        with open(path, "w") as handle:
            handle.write("0")
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_locked_counter_worker,
                        args=(path, INCREMENTS))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        with open(path) as handle:
            assert int(handle.read()) == 2 * INCREMENTS

    def test_concurrent_catalog_saves_leave_valid_file(self, tmp_path):
        path = str(tmp_path / "catalog.json")
        BackupCatalog(path).save()
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_catalog_writer_worker,
                        args=(path, "fs%d" % index, range(3)))
            for index in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        # Depending on interleaving one writer's snapshot wins (3 sets)
        # or they fully serialise (6) — either way the survivor must be
        # a complete, parseable catalog, never an interleaved torn write.
        with open(path) as handle:
            data = json.load(handle)
        reloaded = BackupCatalog.load(path)
        assert len(reloaded.sets) in (3, 6)
        assert data["version"] == CATALOG_VERSION


class TestAcquisition:
    def test_context_manager_round_trip(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"))
        assert not lock.locked
        with lock:
            assert lock.locked
            assert lock.holder_pid() == os.getpid()
        assert not lock.locked

    def test_reentrant_within_one_object(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"))
        with lock:
            with lock:
                assert lock.locked
            assert lock.locked  # inner exit must not release the lock
        assert not lock.locked

    def test_release_unheld_refused(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"))
        with pytest.raises(CatalogError):
            lock.release()

    def test_timeout_names_holder_pid(self, tmp_path):
        path = str(tmp_path / "x.lock")
        ctx = multiprocessing.get_context("fork")
        acquired = ctx.Event()
        release = ctx.Event()
        holder = ctx.Process(target=_hold_lock_worker,
                             args=(path, acquired, release))
        holder.start()
        try:
            assert acquired.wait(30.0)
            contender = FileLock(path, timeout=0.2)
            with pytest.raises(CatalogError) as excinfo:
                contender.acquire()
            assert "timed out" in str(excinfo.value)
            assert str(holder.pid) in str(excinfo.value)
        finally:
            release.set()
            holder.join(timeout=30)
        # Once the holder exits, the lock is free immediately.
        with FileLock(path, timeout=5.0):
            pass

    def test_lock_released_when_holder_dies(self, tmp_path):
        path = str(tmp_path / "x.lock")
        ctx = multiprocessing.get_context("fork")
        acquired = ctx.Event()
        release = ctx.Event()
        holder = ctx.Process(target=_hold_lock_worker,
                             args=(path, acquired, release))
        holder.start()
        assert acquired.wait(30.0)
        holder.terminate()  # dies without releasing
        holder.join(timeout=30)
        # The kernel drops a dead holder's flock: no stale lock to break.
        with FileLock(path, timeout=5.0) as lock:
            assert lock.locked


class TestStoreIntegration:
    def test_save_takes_the_lock(self, tmp_path):
        path = str(tmp_path / "catalog.json")
        catalog = BackupCatalog(path)
        with catalog._lock():
            # Held by us (same process, different object): a save from a
            # short-timeout contender must time out, proving save() goes
            # through the lock rather than around it.
            contender = BackupCatalog(path)
            contender_lock = contender._lock()
            contender_lock.timeout = 0.2
            with pytest.raises(CatalogError):
                contender_lock.acquire()
        catalog.save()
        assert os.path.exists(path)

    def test_in_memory_catalog_save_is_noop(self):
        BackupCatalog().save()  # no path, no lock, no crash
