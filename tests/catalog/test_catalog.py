"""The persistent backup catalog: records, chains, persistence."""

from __future__ import annotations

import json

import pytest

from repro.catalog import (
    CATALOG_VERSION,
    BackupCatalog,
    BackupSet,
    RestorePlan,
)
from repro.errors import CatalogError


def record_simple(catalog, level, day, date=None, fsid="home", subtree="/",
                  strategy="logical", **kwargs):
    return catalog.record_set(
        fsid=fsid, subtree=subtree, strategy=strategy, level=level,
        day=day, date=date if date is not None else 100 + day,
        save=False, **kwargs,
    )


class TestRecording:
    def test_ids_are_sequential(self):
        catalog = BackupCatalog()
        first = record_simple(catalog, 0, 0)
        second = record_simple(catalog, 2, 1)
        assert first.set_id == "S0001"
        assert second.set_id == "S0002"

    def test_full_has_no_base(self):
        catalog = BackupCatalog()
        full = record_simple(catalog, 0, 0)
        assert full.is_full
        assert full.base_set_id is None

    def test_incremental_links_most_recent_lower_level(self):
        catalog = BackupCatalog()
        full = record_simple(catalog, 0, 0)
        lvl1 = record_simple(catalog, 1, 4)
        lvl2 = record_simple(catalog, 2, 5)
        assert lvl1.base_set_id == full.set_id
        # Level 2 bases on the level 1 (more recent than the full).
        assert lvl2.base_set_id == lvl1.set_id

    def test_incremental_without_base_raises(self):
        catalog = BackupCatalog()
        with pytest.raises(CatalogError):
            record_simple(catalog, 2, 0)

    def test_base_snapshot_resolves_explicitly(self):
        catalog = BackupCatalog()
        full = record_simple(catalog, 0, 0, strategy="image",
                             snapshot="img.d0")
        incr = record_simple(catalog, 2, 1, strategy="image",
                             snapshot="img.d1", base_snapshot="img.d0")
        assert incr.base_set_id == full.set_id

    def test_unknown_base_snapshot_raises(self):
        catalog = BackupCatalog()
        with pytest.raises(CatalogError):
            record_simple(catalog, 2, 1, strategy="image",
                          base_snapshot="never-dumped")

    def test_logical_records_feed_dumpdates(self):
        catalog = BackupCatalog()
        record_simple(catalog, 0, 0, date=50)
        date, base_level = catalog.dumpdates.base_for("home", "/", 2)
        assert (date, base_level) == (50, 0)

    def test_strategies_keep_separate_chains(self):
        catalog = BackupCatalog()
        record_simple(catalog, 0, 0, strategy="logical")
        with pytest.raises(CatalogError):
            # No image full exists, so an image incremental has no base.
            record_simple(catalog, 1, 1, strategy="image")


class TestChainPlanning:
    def build_gfs_history(self, catalog):
        """Fulls at day 0 and 8, level 1 at day 4 and 12, level 2 between."""
        for day in range(14):
            if day % 8 == 0:
                level = 0
            elif day % 4 == 0:
                level = 1
            else:
                level = 2
            record_simple(catalog, level, day)

    def test_chain_for_latest_is_minimal(self):
        catalog = BackupCatalog()
        self.build_gfs_history(catalog)
        plan = catalog.chain_for("home")
        assert [s.day for s in plan.sets] == [8, 12, 13]
        assert [s.level for s in plan.sets] == [0, 1, 2]

    def test_chain_for_target_day_picks_state_not_newer(self):
        catalog = BackupCatalog()
        self.build_gfs_history(catalog)
        plan = catalog.chain_for("home", target_day=6)
        assert [s.day for s in plan.sets] == [0, 4, 6]
        assert plan.target.day == 6

    def test_chain_for_day_between_dumps_uses_previous(self):
        catalog = BackupCatalog()
        record_simple(catalog, 0, 0)
        record_simple(catalog, 2, 3)
        plan = catalog.chain_for("home", target_day=5)
        assert plan.target.day == 3

    def test_chain_for_uncovered_day_raises(self):
        catalog = BackupCatalog()
        record_simple(catalog, 0, 5)
        with pytest.raises(CatalogError):
            catalog.chain_for("home", target_day=2)

    def test_chain_for_unknown_volume_raises(self):
        catalog = BackupCatalog()
        with pytest.raises(CatalogError):
            catalog.chain_for("nosuch")

    def test_plan_cartridges_are_ordered_and_deduped(self):
        catalog = BackupCatalog()
        record_simple(catalog, 0, 0, cartridges=["c1", "c2"])
        record_simple(catalog, 1, 1, cartridges=["c2", "c3"])
        plan = catalog.chain_for("home")
        assert plan.cartridges == ["c1", "c2", "c3"]

    def test_chain_through_pruned_base_raises(self):
        catalog = BackupCatalog()
        self.build_gfs_history(catalog)
        first_full = catalog.chain_for("home", target_day=7).sets[0]
        chain = [s.set_id for s in catalog.sets_for("home")
                 if catalog.root_of(s.set_id) == first_full.set_id]
        catalog.mark_obsolete(chain, save=False)
        with pytest.raises(CatalogError):
            catalog.chain_for("home", target_day=6)
        # Days covered by the second full still plan fine.
        assert len(catalog.chain_for("home", target_day=13)) == 3

    def test_root_of_and_members(self):
        catalog = BackupCatalog()
        self.build_gfs_history(catalog)
        last = catalog.sets_for("home")[-1]
        members = catalog.chain_members(last.set_id)
        assert members[0].is_full
        assert catalog.root_of(last.set_id) == members[0].set_id


class TestObsoleteInvariant:
    def test_cannot_orphan_a_surviving_incremental(self):
        catalog = BackupCatalog()
        full = record_simple(catalog, 0, 0)
        record_simple(catalog, 1, 1)
        with pytest.raises(CatalogError):
            catalog.mark_obsolete([full.set_id], save=False)

    def test_whole_chain_retires_together(self):
        catalog = BackupCatalog()
        full = record_simple(catalog, 0, 0)
        incr = record_simple(catalog, 1, 1)
        catalog.mark_obsolete([full.set_id, incr.set_id], save=False)
        assert not catalog.get_set(full.set_id).ok
        assert catalog.validate_no_orphans() == []

    def test_unknown_set_id_raises(self):
        catalog = BackupCatalog()
        with pytest.raises(CatalogError):
            catalog.mark_obsolete(["S9999"], save=False)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "cat.json")
        catalog = BackupCatalog(path)
        catalog.register_cartridge(1000)
        record_simple(catalog, 0, 0, date=60, cartridges=["crt0001"])
        record_simple(catalog, 1, 4, date=70)
        catalog.set_policy("home", "/", "redundancy 2", save=False)
        catalog.save()

        loaded = BackupCatalog.load(path)
        assert sorted(loaded.sets) == sorted(catalog.sets)
        assert loaded.media["crt0001"].capacity == 1000
        assert loaded.policy_for("home") == "redundancy 2"
        assert loaded.next_set == catalog.next_set
        # Chains still plan identically.
        assert ([s.set_id for s in loaded.chain_for("home").sets]
                == [s.set_id for s in catalog.chain_for("home").sets])

    def test_dumpdates_rebuilt_on_load(self, tmp_path):
        path = str(tmp_path / "cat.json")
        catalog = BackupCatalog(path)
        record_simple(catalog, 0, 0, date=60)
        record_simple(catalog, 2, 1, date=65)
        record_simple(catalog, 1, 4, date=75)
        catalog.save()
        loaded = BackupCatalog.load(path)
        # The level-2 at date 65 was superseded by the level-1 at 75.
        assert loaded.dumpdates.base_for("home", "/", 2) == (75, 1)
        history = dict(loaded.dumpdates.history("home", "/"))
        assert 2 not in history

    def test_save_is_atomic_replace(self, tmp_path):
        path = str(tmp_path / "cat.json")
        catalog = BackupCatalog(path)
        record_simple(catalog, 0, 0)
        catalog.save()
        assert not (tmp_path / "cat.json.tmp").exists()

    def test_open_creates_fresh_when_missing(self, tmp_path):
        path = str(tmp_path / "new.json")
        catalog = BackupCatalog.open(path)
        assert catalog.sets == {}
        assert catalog.path == path

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(CatalogError):
            BackupCatalog.load(str(tmp_path / "nope.json"))

    def test_load_bad_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ not json")
        with pytest.raises(CatalogError):
            BackupCatalog.load(str(path))

    def test_load_wrong_version_raises(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"version": CATALOG_VERSION + 1}))
        with pytest.raises(CatalogError):
            BackupCatalog.load(str(path))

    def test_load_missing_set_field_raises(self, tmp_path):
        path = tmp_path / "trunc.json"
        path.write_text(json.dumps({
            "version": CATALOG_VERSION,
            "sets": [{"set_id": "S0001", "fsid": "home"}],
        }))
        with pytest.raises(CatalogError):
            BackupCatalog.load(str(path))

    def test_in_memory_catalog_never_touches_disk(self):
        catalog = BackupCatalog()
        record_simple(catalog, 0, 0)
        catalog.save()  # no path: must be a no-op, not an error


class TestRecords:
    def test_backup_set_rejects_unknown_strategy(self):
        with pytest.raises(CatalogError):
            BackupSet("S1", "home", "/", "tarball", 0, 0, 0)

    def test_empty_plan_rejected(self):
        with pytest.raises(CatalogError):
            RestorePlan([])

    def test_cartridge_registration_is_unique(self):
        catalog = BackupCatalog()
        catalog.register_cartridge(100, label="A")
        with pytest.raises(CatalogError):
            catalog.register_cartridge(100, label="A")

    def test_auto_labels_increment(self):
        catalog = BackupCatalog()
        first = catalog.register_cartridge(100)
        second = catalog.register_cartridge(100)
        assert (first.label, second.label) == ("crt0001", "crt0002")
        assert len(catalog.scratch_media()) == 2
