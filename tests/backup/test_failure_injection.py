"""Failure injection: media exhaustion, full targets, degraded sources."""

import pytest

from repro.errors import NoSpaceError, TapeError
from repro.backup import (
    DumpDates,
    ImageDump,
    ImageRestore,
    LogicalDump,
    LogicalRestore,
    drain_engine,
)
from repro.storage.tape import TapeDrive, TapeStacker
from repro.units import KB, MB
from repro.wafl.filesystem import WaflFilesystem
from repro.wafl.fsck import fsck

from tests.conftest import make_drive, make_fs, populate_small_tree


def test_dump_spans_many_small_cartridges():
    """A stacker feeding tiny cartridges: the stream spans transparently."""
    fs = make_fs()
    populate_small_tree(fs)
    drive = TapeDrive(TapeStacker.with_blank_tapes(64, capacity=16 * KB,
                                                   name="tiny"))
    result = drain_engine(LogicalDump(fs, drive, dumpdates=DumpDates()).run())
    assert drive.media_changes > 2  # real cartridge swaps happened
    target = make_fs(name="dst")
    drain_engine(LogicalRestore(target, drive).run())
    assert target.read_file("/src/main.c") == fs.read_file("/src/main.c")


def test_dump_fails_cleanly_when_stacker_exhausted():
    fs = make_fs()
    populate_small_tree(fs)
    drive = TapeDrive(TapeStacker.with_blank_tapes(1, capacity=16 * KB,
                                                   name="onecart"))
    with pytest.raises(TapeError):
        drain_engine(LogicalDump(fs, drive, dumpdates=DumpDates()).run())


def test_image_dump_stacker_exhausted():
    fs = make_fs()
    populate_small_tree(fs)
    drive = TapeDrive(TapeStacker.with_blank_tapes(1, capacity=16 * KB,
                                                   name="onecart"))
    with pytest.raises(TapeError):
        drain_engine(ImageDump(fs, drive).run())


def test_restore_into_full_filesystem_raises_enospc():
    source = make_fs(name="src")
    source.create("/big", b"B" * (4 * MB))
    drive = make_drive()
    drain_engine(LogicalDump(source, drive, dumpdates=DumpDates()).run())
    # A target too small for the data.
    target = make_fs(ngroups=1, ndata=2, blocks_per_disk=300, name="tiny")
    with pytest.raises(NoSpaceError):
        drain_engine(LogicalRestore(target, drive).run())


def test_image_dump_from_degraded_volume():
    """A failed data disk mid-volume: image dump reconstructs via parity."""
    fs = make_fs(name="src")
    populate_small_tree(fs)
    fs.consistency_point()
    failed = fs.volume.groups[1].data_disks[0]
    for stripe in range(failed.nblocks):
        failed.fail_block(stripe)
    drive = make_drive()
    result = drain_engine(ImageDump(fs, drive, snapshot_name="deg").run())
    assert result.blocks > 0
    fresh = fs.volume.clone_empty()
    drain_engine(ImageRestore(fresh, drive).run())
    restored = WaflFilesystem.mount(fresh)
    assert restored.read_file("/src/main.c") == bytes(range(256)) * 64
    assert fsck(restored).clean


def test_dump_snapshot_cleaned_up_after_tape_failure():
    """The engine's working snapshot must not leak when the dump dies."""
    fs = make_fs()
    populate_small_tree(fs)
    drive = TapeDrive(TapeStacker.with_blank_tapes(1, capacity=16 * KB,
                                                   name="onecart"))
    engine = LogicalDump(fs, drive, dumpdates=DumpDates(),
                         snapshot_name="doomed")
    with pytest.raises(TapeError):
        drain_engine(engine.run())
    # The snapshot is still there (the dump did not complete) — an
    # operator can retry the dump against it or delete it explicitly.
    assert fs.fsinfo.find_snapshot("doomed") is not None
    fs.snapshot_delete("doomed")
    assert fsck(fs).clean


def test_restore_survives_trailing_garbage_on_tape():
    fs = make_fs(name="src")
    populate_small_tree(fs)
    drive = make_drive()
    drain_engine(LogicalDump(fs, drive, dumpdates=DumpDates()).run())
    drive.write(b"\xff" * 4096)  # junk after TS_END
    target = make_fs(name="dst")
    drain_engine(LogicalRestore(target, drive).run())
    assert target.read_file("/docs/readme.txt") == \
        fs.read_file("/docs/readme.txt")
