"""Failure injection: media exhaustion, full targets, degraded sources."""

import pytest

from repro.errors import NoSpaceError, TapeError
from repro.backup import (
    DumpDates,
    ImageDump,
    ImageRestore,
    LogicalDump,
    LogicalRestore,
    drain_engine,
)
from repro.storage.tape import TapeDrive, TapeStacker
from repro.units import KB, MB
from repro.wafl.filesystem import WaflFilesystem
from repro.wafl.fsck import fsck

from tests.conftest import make_drive, make_fs, populate_small_tree


def test_dump_spans_many_small_cartridges():
    """A stacker feeding tiny cartridges: the stream spans transparently."""
    fs = make_fs()
    populate_small_tree(fs)
    drive = TapeDrive(TapeStacker.with_blank_tapes(64, capacity=16 * KB,
                                                   name="tiny"))
    result = drain_engine(LogicalDump(fs, drive, dumpdates=DumpDates()).run())
    assert drive.media_changes > 2  # real cartridge swaps happened
    target = make_fs(name="dst")
    drain_engine(LogicalRestore(target, drive).run())
    assert target.read_file("/src/main.c") == fs.read_file("/src/main.c")


def test_dump_fails_cleanly_when_stacker_exhausted():
    fs = make_fs()
    populate_small_tree(fs)
    drive = TapeDrive(TapeStacker.with_blank_tapes(1, capacity=16 * KB,
                                                   name="onecart"))
    with pytest.raises(TapeError):
        drain_engine(LogicalDump(fs, drive, dumpdates=DumpDates()).run())


def test_image_dump_stacker_exhausted():
    fs = make_fs()
    populate_small_tree(fs)
    drive = TapeDrive(TapeStacker.with_blank_tapes(1, capacity=16 * KB,
                                                   name="onecart"))
    with pytest.raises(TapeError):
        drain_engine(ImageDump(fs, drive).run())


def test_restore_into_full_filesystem_raises_enospc():
    source = make_fs(name="src")
    source.create("/big", b"B" * (4 * MB))
    drive = make_drive()
    drain_engine(LogicalDump(source, drive, dumpdates=DumpDates()).run())
    # A target too small for the data.
    target = make_fs(ngroups=1, ndata=2, blocks_per_disk=300, name="tiny")
    with pytest.raises(NoSpaceError):
        drain_engine(LogicalRestore(target, drive).run())


def test_image_dump_from_degraded_volume():
    """A failed data disk mid-volume: image dump reconstructs via parity."""
    fs = make_fs(name="src")
    populate_small_tree(fs)
    fs.consistency_point()
    failed = fs.volume.groups[1].data_disks[0]
    for stripe in range(failed.nblocks):
        failed.fail_block(stripe)
    drive = make_drive()
    result = drain_engine(ImageDump(fs, drive, snapshot_name="deg").run())
    assert result.blocks > 0
    fresh = fs.volume.clone_empty()
    drain_engine(ImageRestore(fresh, drive).run())
    restored = WaflFilesystem.mount(fresh)
    assert restored.read_file("/src/main.c") == bytes(range(256)) * 64
    assert fsck(restored).clean


def test_dump_snapshot_cleaned_up_after_tape_failure():
    """The engine's working snapshot must not leak when the dump dies."""
    fs = make_fs()
    populate_small_tree(fs)
    drive = TapeDrive(TapeStacker.with_blank_tapes(1, capacity=16 * KB,
                                                   name="onecart"))
    engine = LogicalDump(fs, drive, dumpdates=DumpDates(),
                         snapshot_name="doomed")
    with pytest.raises(TapeError):
        drain_engine(engine.run())
    # The snapshot is still there (the dump did not complete) — an
    # operator can retry the dump against it or delete it explicitly.
    assert fs.fsinfo.find_snapshot("doomed") is not None
    fs.snapshot_delete("doomed")
    assert fsck(fs).clean


def test_restore_survives_trailing_garbage_on_tape():
    fs = make_fs(name="src")
    populate_small_tree(fs)
    drive = make_drive()
    drain_engine(LogicalDump(fs, drive, dumpdates=DumpDates()).run())
    drive.write(b"\xff" * 4096)  # junk after TS_END
    target = make_fs(name="dst")
    drain_engine(LogicalRestore(target, drive).run())
    assert target.read_file("/docs/readme.txt") == \
        fs.read_file("/docs/readme.txt")


# ---------------------------------------------------------------------------
# Observability on error paths: failures leave a trace event + counters
# ---------------------------------------------------------------------------

class _ObservedFailure:
    """Enable tracing + metrics for one engine run; restore on exit."""

    def __enter__(self):
        from repro.obs import REGISTRY, Tracer, set_tracer

        self.registry = REGISTRY
        self.tracer = Tracer()
        set_tracer(self.tracer)
        REGISTRY.reset()
        REGISTRY.enabled = True
        return self

    def __exit__(self, *exc_info):
        from repro.obs import set_tracer

        set_tracer(None)
        self.registry.reset()
        self.registry.enabled = False

    def error_events(self):
        return [e for e in self.tracer.events() if e.get("cat") == "error"]

    def counters(self):
        return self.registry.snapshot()["counters"]


def test_dump_tape_failure_emits_trace_and_metrics():
    fs = make_fs()
    populate_small_tree(fs)
    drive = TapeDrive(TapeStacker.with_blank_tapes(1, capacity=16 * KB,
                                                   name="onecart"))
    with _ObservedFailure() as obs:
        with pytest.raises(TapeError):
            drain_engine(LogicalDump(fs, drive, dumpdates=DumpDates()).run())
        counters = obs.counters()
        errors = obs.error_events()
    assert counters["backup.errors"] == 1
    assert counters["backup.errors.logical.dump"] == 1
    # The write attempts leading up to the failure were observed too.
    assert counters["tape.writes"] >= 1
    assert len(errors) == 1
    assert errors[0]["name"] == "error:logical.dump"
    assert errors[0]["args"]["type"] == "TapeError"
    assert errors[0]["args"]["message"]


def test_image_dump_tape_failure_scopes_its_counter():
    fs = make_fs()
    populate_small_tree(fs)
    drive = TapeDrive(TapeStacker.with_blank_tapes(1, capacity=16 * KB,
                                                   name="onecart"))
    with _ObservedFailure() as obs:
        with pytest.raises(TapeError):
            drain_engine(ImageDump(fs, drive).run())
        counters = obs.counters()
        errors = obs.error_events()
    assert counters["backup.errors.image.dump"] == 1
    assert "backup.errors.logical.dump" not in counters
    assert errors[0]["name"] == "error:image.dump"


def test_restore_no_space_emits_trace_and_metrics():
    source = make_fs(name="src")
    source.create("/big", b"B" * (4 * MB))
    drive = make_drive()
    drain_engine(LogicalDump(source, drive, dumpdates=DumpDates()).run())
    target = make_fs(ngroups=1, ndata=2, blocks_per_disk=300, name="tiny")
    with _ObservedFailure() as obs:
        with pytest.raises(NoSpaceError):
            drain_engine(LogicalRestore(target, drive).run())
        counters = obs.counters()
        errors = obs.error_events()
    assert counters["backup.errors"] == 1
    assert counters["backup.errors.logical.restore"] == 1
    # Tape reads happened before the target filled up.
    assert counters["tape.reads"] >= 1
    assert errors[0]["name"] == "error:logical.restore"
    assert errors[0]["args"]["type"] == "NoSpaceError"


def test_successful_dump_emits_no_error_observations():
    fs = make_fs()
    populate_small_tree(fs)
    with _ObservedFailure() as obs:
        drain_engine(LogicalDump(fs, make_drive(),
                                 dumpdates=DumpDates()).run())
        counters = obs.counters()
        errors = obs.error_events()
    assert errors == []
    assert "backup.errors" not in counters
    assert counters["tape.write_bytes"] > 0
