"""Level-0 logical dump/restore round trips."""


from repro.backup import (
    DumpDates,
    LogicalDump,
    LogicalRestore,
    drain_engine,
    verify_trees,
)
from repro.wafl.consts import BLOCK_SIZE
from repro.wafl.fsck import fsck

from tests.conftest import make_drive, make_fs, populate_small_tree


def dump_to(fs, drive, **kwargs):
    return drain_engine(LogicalDump(fs, drive, **kwargs).run())


def restore_from(fs, drive, **kwargs):
    return drain_engine(LogicalRestore(fs, drive, **kwargs).run())


def test_full_roundtrip_preserves_everything():
    source = make_fs(name="src")
    populate_small_tree(source)
    drive = make_drive()
    result = dump_to(source, drive, level=0, dumpdates=DumpDates())
    assert result.files >= 6
    assert result.directories >= 4
    target = make_fs(name="dst")
    restore_result = restore_from(target, drive)
    assert verify_trees(source, target, check_mtime=True) == []
    assert fsck(target).clean
    assert restore_result.symtab is not None


def test_cross_geometry_restore():
    """The archival property physical backup lacks: restore onto a volume
    with a completely different RAID layout."""
    source = make_fs(ngroups=2, ndata=4, name="src")
    populate_small_tree(source)
    drive = make_drive()
    dump_to(source, drive)
    target = make_fs(ngroups=1, ndata=7, blocks_per_disk=3000, name="dst")
    restore_from(target, drive)
    assert verify_trees(source, target, check_mtime=True) == []


def test_dump_from_snapshot_is_consistent_view():
    """Mutations during (after) the snapshot do not reach the tape."""
    source = make_fs()
    source.create("/steady", b"before")
    view_snapshot = source.snapshot_create("manual")
    source.write_file("/steady", b"AFTER!", 0)
    drive = make_drive()
    dump_to(source.snapshot_view("manual"), drive)
    target = make_fs(name="dst")
    restore_from(target, drive)
    assert target.read_file("/steady") == b"before"


def test_dump_manages_its_own_snapshot():
    source = make_fs()
    source.create("/f", b"x")
    snaps_before = [s.name for s in source.snapshots()]
    drive = make_drive()
    result = dump_to(source, drive, dumpdates=DumpDates())
    assert result.snapshot is not None
    assert [s.name for s in source.snapshots()] == snaps_before


def test_subtree_dump_and_restore_into():
    source = make_fs()
    populate_small_tree(source)
    source.create("/outside", b"not dumped")
    drive = make_drive()
    dump_to(source, drive, subtree="/src")
    target = make_fs(name="dst")
    restore_from(target, drive, into="/restored")
    assert target.read_file("/restored/main.c") == source.read_file("/src/main.c")
    assert not target.exists("/outside")
    assert not target.exists("/restored/docs")


def test_exclusion_filter():
    source = make_fs()
    source.create("/keep.c", b"k")
    source.create("/skip.o", b"s")
    source.mkdir("/objs")
    source.create("/objs/also.o", b"a")
    drive = make_drive()
    result = dump_to(
        source, drive,
        exclude=lambda path, inode: path.endswith(".o"),
    )
    target = make_fs(name="dst")
    restore_from(target, drive)
    assert target.exists("/keep.c")
    assert not target.exists("/skip.o")
    assert not target.exists("/objs/also.o")
    assert target.exists("/objs")  # the directory itself is kept


def test_sparse_file_stays_sparse():
    source = make_fs()
    source.create("/sparse")
    source.write_file("/sparse", b"head", 0)
    source.write_file("/sparse", b"tail", 50 * BLOCK_SIZE)
    drive = make_drive()
    dump_to(source, drive)
    target = make_fs(name="dst")
    restore_from(target, drive)
    assert target.read_file("/sparse") == source.read_file("/sparse")
    ino = target.namei("/sparse")
    allocated = sum(c for _f, _v, c in target.file_extents(ino))
    assert allocated <= 3  # holes were not materialized


def test_empty_filesystem_roundtrip():
    source = make_fs()
    drive = make_drive()
    dump_to(source, drive)
    target = make_fs(name="dst")
    restore_from(target, drive)
    assert verify_trees(source, target) == []


def test_large_file_roundtrip():
    source = make_fs(blocks_per_disk=4000)
    from repro.workload.distributions import deterministic_bytes

    payload = deterministic_bytes(9, 3 * 1024 * 1024)
    source.create("/big.tar", payload)
    drive = make_drive()
    dump_to(source, drive)
    target = make_fs(name="dst", blocks_per_disk=4000)
    restore_from(target, drive)
    assert target.read_file("/big.tar") == payload


def test_dump_counts_bytes_and_records_dumpdates():
    source = make_fs()
    populate_small_tree(source)
    dumpdates = DumpDates()
    drive = make_drive()
    result = dump_to(source, drive, level=0, dumpdates=dumpdates)
    assert result.bytes_to_tape == drive.bytes_written
    history = dumpdates.history(source.volume.name, "/")
    assert len(history) == 1
    assert history[0][0] == 0  # level


def test_restore_through_nvram_path():
    source = make_fs()
    populate_small_tree(source)
    drive = make_drive()
    dump_to(source, drive)
    target = make_fs(name="dst", nvram=True)
    restore_from(target, drive)
    assert verify_trees(source, target, check_mtime=True) == []
    assert target.nvram.total_ops_logged > 0


def test_hardlinks_restored_as_one_inode():
    source = make_fs()
    source.create("/a", b"shared")
    source.link("/a", "/b")
    source.link("/a", "/c")
    drive = make_drive()
    dump_to(source, drive)
    target = make_fs(name="dst")
    restore_from(target, drive)
    assert target.namei("/a") == target.namei("/b") == target.namei("/c")
    assert target.inode(target.namei("/a")).nlink == 3
