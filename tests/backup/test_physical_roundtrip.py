"""Image (physical) dump/restore round trips and incrementals."""

import pytest

from repro.errors import GeometryError, IncrementalError, SnapshotError
from repro.backup import (
    ImageDump,
    ImageRestore,
    drain_engine,
    verify_trees,
    verify_volumes,
)
from repro.backup.physical.incremental import incremental_block_set
from repro.wafl.filesystem import WaflFilesystem
from repro.wafl.fsck import fsck

from tests.conftest import make_drive, make_fs, make_volume, populate_small_tree


def image_dump(fs, drive, **kwargs):
    return drain_engine(ImageDump(fs, drive, **kwargs).run())


def image_restore(volume, drive, **kwargs):
    return drain_engine(ImageRestore(volume, drive, **kwargs).run())


def test_full_image_roundtrip():
    source = make_fs(name="src")
    populate_small_tree(source)
    drive = make_drive()
    dump_result = image_dump(source, drive, snapshot_name="base")
    assert dump_result.blocks > 0
    target_volume = source.volume.clone_empty()
    restore_result = image_restore(target_volume, drive)
    assert restore_result.blocks == dump_result.blocks
    target = WaflFilesystem.mount(target_volume)
    assert verify_trees(source, target, check_mtime=True) == []
    assert fsck(target).clean


def test_restored_blocks_are_byte_identical():
    source = make_fs(name="src")
    populate_small_tree(source)
    drive = make_drive()
    image_dump(source, drive, snapshot_name="base")
    blocks = source.blockmap.plane_blocks(
        source.fsinfo.find_snapshot("base").snap_id
    )
    target_volume = source.volume.clone_empty()
    image_restore(target_volume, drive)
    assert verify_volumes(source.volume, target_volume, blocks) == []


def test_geometry_mismatch_refused():
    source = make_fs(ngroups=2, ndata=4, name="src")
    source.create("/f", b"x")
    drive = make_drive()
    image_dump(source, drive)
    wrong = make_volume(ngroups=1, ndata=3, blocks_per_disk=900)
    with pytest.raises(GeometryError):
        image_restore(wrong, drive)


def test_incremental_image_chain():
    source = make_fs(name="src")
    populate_small_tree(source)
    full_drive = make_drive("full")
    image_dump(source, full_drive, snapshot_name="A")
    source.write_file("/src/main.c", b"CHANGED" * 100, 0)
    source.create("/added", b"new data" * 50)
    source.unlink("/docs/readme.txt")
    incr_drive = make_drive("incr")
    incr = image_dump(source, incr_drive, snapshot_name="B",
                      base_snapshot="A")
    assert incr.incremental
    target_volume = source.volume.clone_empty()
    image_restore(target_volume, full_drive)
    image_restore(target_volume, incr_drive)
    target = WaflFilesystem.mount(target_volume)
    assert verify_trees(source, target, check_mtime=True) == []
    assert not target.exists("/docs/readme.txt")


def test_incremental_is_smaller_than_full():
    source = make_fs(name="src")
    populate_small_tree(source)
    source.create("/bulk", b"B" * (200 * 4096))
    full_drive = make_drive("full")
    full = image_dump(source, full_drive, snapshot_name="A")
    source.create("/small-change", b"tiny")
    incr_drive = make_drive("incr")
    incr = image_dump(source, incr_drive, snapshot_name="B",
                      base_snapshot="A")
    assert incr.blocks < full.blocks / 2


def test_incremental_matches_plane_difference():
    source = make_fs(name="src")
    populate_small_tree(source)
    image_dump(source, make_drive(), snapshot_name="A")
    source.create("/delta", b"d" * 9000)
    drive = make_drive()
    incr = image_dump(source, drive, snapshot_name="B", base_snapshot="A")
    a = source.fsinfo.find_snapshot("A").snap_id
    b = source.fsinfo.find_snapshot("B").snap_id
    expected = incremental_block_set(source.blockmap, b, a)
    assert incr.blocks == len(expected)


def test_incremental_onto_wrong_base_refused():
    source = make_fs(name="src")
    populate_small_tree(source)
    image_dump(source, make_drive(), snapshot_name="A")
    source.create("/x", b"1")
    incr_drive = make_drive()
    image_dump(source, incr_drive, snapshot_name="B", base_snapshot="A")
    # A blank target has no base at all.
    blank = source.volume.clone_empty()
    with pytest.raises(IncrementalError):
        image_restore(blank, incr_drive)


def test_incremental_missing_base_snapshot_refused():
    source = make_fs()
    source.create("/f", b"x")
    with pytest.raises(SnapshotError):
        image_dump(source, make_drive(), snapshot_name="B",
                   base_snapshot="never-existed")


def test_include_snapshots_restores_them():
    source = make_fs(name="src")
    source.create("/f", b"version-1")
    source.snapshot_create("old")
    source.write_file("/f", b"version-2", 0)
    source.consistency_point()
    drive = make_drive()
    image_dump(source, drive, include_snapshots=True,
               snapshot_name="old", manage_snapshot=False)
    target_volume = source.volume.clone_empty()
    image_restore(target_volume, drive)
    target = WaflFilesystem.mount(target_volume)
    assert target.read_file("/f") == b"version-2"
    assert [s.name for s in target.snapshots()] == ["old"]
    assert target.snapshot_view("old").read_file("/f") == b"version-1"


def test_multidrive_striping_roundtrip():
    source = make_fs(name="src")
    populate_small_tree(source)
    drives = [make_drive("d%d" % index) for index in range(3)]
    dump_result = image_dump(source, drives, snapshot_name="p")
    # All drives received a share.
    assert all(drive.bytes_written > 0 for drive in drives)
    target_volume = source.volume.clone_empty()
    restore_result = image_restore(target_volume, drives)
    assert restore_result.blocks == dump_result.blocks
    target = WaflFilesystem.mount(target_volume)
    assert verify_trees(source, target, check_mtime=True) == []


def test_chunk_crc_detects_corruption():
    from repro.errors import FormatError

    source = make_fs(name="src")
    source.create("/f", b"payload" * 1000)
    drive = make_drive()
    image_dump(source, drive)
    # Flip a byte inside the stream's data region.
    cartridge = drive.stacker.cartridges[0]
    cartridge.data[20000] ^= 0xFF
    target_volume = source.volume.clone_empty()
    with pytest.raises(FormatError):
        image_restore(target_volume, drive)


def test_dump_bypasses_buffer_cache():
    source = make_fs(name="src")
    populate_small_tree(source)
    source.snapshot_create("bypass")
    cache = source.volume.cache
    hits_before = cache.hits
    # Dump an existing snapshot: no CP runs, only raw block streaming.
    image_dump(source, make_drive(), snapshot_name="bypass",
               manage_snapshot=False)
    assert cache.hits == hits_before


def test_physical_restore_preserves_raid_parity():
    source = make_fs(name="src")
    populate_small_tree(source)
    drive = make_drive()
    image_dump(source, drive)
    target_volume = source.volume.clone_empty()
    image_restore(target_volume, drive)
    assert target_volume.verify_parity()
