"""Interactive restore (restore -i) session tests."""

import pytest

from repro.errors import BackupError, NotFoundError
from repro.backup import DumpDates, LogicalDump, drain_engine
from repro.backup.logical.interactive import InteractiveRestore

from tests.conftest import make_drive, make_fs, populate_small_tree


@pytest.fixture()
def session():
    fs = make_fs(name="src")
    populate_small_tree(fs)
    drive = make_drive()
    drain_engine(LogicalDump(fs, drive, dumpdates=DumpDates()).run())
    return fs, InteractiveRestore(drive)


def test_navigation(session):
    _fs, shell = session
    assert shell.pwd() == "/"
    shell.cd("src")
    assert shell.pwd() == "/src"
    shell.cd("deep")
    assert shell.pwd() == "/src/deep"
    shell.cd("..")
    assert shell.pwd() == "/src"
    shell.cd("/")
    assert shell.pwd() == "/"


def test_ls_shows_directories_with_slash(session):
    _fs, shell = session
    names = shell.ls()
    assert "docs/" in names
    assert "src/" in names
    assert "empty" in names


def test_cd_into_file_rejected(session):
    _fs, shell = session
    with pytest.raises(BackupError):
        shell.cd("/empty")


def test_cd_missing_rejected(session):
    _fs, shell = session
    with pytest.raises(NotFoundError):
        shell.cd("/no/such")


def test_marking_and_display(session):
    _fs, shell = session
    shell.cd("docs")
    shell.add("readme.txt")
    assert "*readme.txt" in shell.ls()
    assert shell.marked() == ["/docs/readme.txt"]
    shell.delete("readme.txt")
    assert shell.marked() == []


def test_directory_mark_covers_children(session):
    _fs, shell = session
    shell.add("/src")
    names = shell.ls("/src")
    assert all(name.startswith("*") for name in names)


def test_unmark_missing_rejected(session):
    _fs, shell = session
    with pytest.raises(BackupError):
        shell.delete("/docs/readme.txt")


def test_extract_marked_files(session):
    source, shell = session
    shell.cd("docs")
    shell.add("readme.txt")
    shell.add("/src/deep")
    target = make_fs(name="dst")
    result = shell.extract(target)
    assert target.read_file("/docs/readme.txt") == \
        source.read_file("/docs/readme.txt")
    assert target.read_file("/src/deep/data.bin") == \
        source.read_file("/src/deep/data.bin")
    assert not target.exists("/src/main.c")
    assert result.files >= 2


def test_extract_without_marks_rejected(session):
    _fs, shell = session
    target = make_fs(name="dst")
    with pytest.raises(BackupError):
        shell.extract(target)


def test_extract_into_subdirectory(session):
    source, shell = session
    shell.add("/empty")
    target = make_fs(name="dst")
    shell.extract(target, into="/recovered")
    assert target.exists("/recovered/empty")
