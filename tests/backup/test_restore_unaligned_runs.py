"""Logical restore's per-segment fallback for non-block-aligned runs.

The dump writer always emits runs starting on 4 KB block boundaries, so
``_block_runs`` normally takes its aligned fast path.  The byte format
itself allows arbitrary segment-granularity runs (a foreign dump tool, or
a rewritten stream, may hole out individual zero kilobytes), and restore
must then fall back to the per-segment walk with identical block
classification.  These tests craft such streams and assert byte-identical
recovery.
"""

from repro.backup import (
    DumpDates,
    LogicalDump,
    LogicalRestore,
    drain_engine,
    verify_trees,
)
from repro.backup.logical.restore import _SEGMENTS_PER_BLOCK, _block_runs
from repro.dumpfmt.records import RecordHeader
from repro.dumpfmt.spec import SEGMENT_SIZE, TS_INODE
from repro.dumpfmt.stream import (
    DumpStreamReader,
    DumpStreamWriter,
    InodeEntry,
    segments_to_runs,
)
from repro.wafl.consts import BLOCK_SIZE
from repro.wafl.fsck import fsck
from repro.wafl.inode import FileType

from tests.conftest import make_drive, make_fs, populate_small_tree

_ZERO_SEGMENT = bytes(SEGMENT_SIZE)


def _entry_bytes_via_block_runs(entry: InodeEntry) -> bytes:
    """Reassemble an entry's contents from ``_block_runs`` output."""
    parts = []
    for _first, chunk, nblocks in _block_runs(entry):
        parts.append(chunk if chunk is not None else bytes(nblocks * BLOCK_SIZE))
    return b"".join(parts)[: entry.header.size]


def _unaligned(runs) -> bool:
    """True when some run starts off a 4 KB block boundary."""
    position = 0
    for count, _buf in runs:
        if position % _SEGMENTS_PER_BLOCK:
            return True
        position += count
    return False


def _segment(fill: int) -> bytes:
    return bytes([fill]) * SEGMENT_SIZE


def test_block_runs_fallback_matches_entry_data():
    # Data runs starting at segment positions 3 and 9 — neither on a
    # block boundary — plus a trailing short segment.
    segments = [
        _segment(0xAA), None, None, _segment(0xBB),  # block 0: present
        None, None, None, None,                      # block 1: pure hole
        None, _segment(0xCC), _segment(0xDD), None,  # block 2: present
        _segment(0xEE),                              # block 3: short tail
    ]
    runs = segments_to_runs(segments)
    assert _unaligned(runs), "test stream must exercise the fallback"
    header = RecordHeader(TS_INODE, 7)
    header.size = 12 * SEGMENT_SIZE + 10
    header.ftype = FileType.REGULAR
    entry = InodeEntry(header, runs)
    assert _entry_bytes_via_block_runs(entry) == entry.data
    # Block classification: the pure-hole block stays a hole, every
    # partially present block comes out whole and zero padded.
    shapes = [(first, chunk is None, nblocks)
              for first, chunk, nblocks in _block_runs(entry)]
    assert shapes == [(0, False, 1), (1, True, 1), (2, False, 1), (3, False, 1)]


def _reencode_with_segment_holes(src_drive, dst_drive, target_ino: int):
    """Copy a dump stream, re-encoding one file's zero kilobytes as holes.

    Per-segment hole detection produces runs that start mid-block, which
    the dump writer itself never emits — exactly the foreign stream the
    fallback path exists for.
    """
    src_drive.rewind()
    reader = DumpStreamReader(src_drive)
    label = reader.read_preamble()
    writer = DumpStreamWriter(dst_drive, date=reader.date, ddate=reader.ddate)
    writer.write_tape_header(label)
    bound = max(reader.clri_inos | reader.bits_inos | {0}) + 8
    writer.write_clri(reader.clri_inos, bound)
    writer.write_bits(reader.bits_inos, bound)
    rewritten = 0
    while True:
        entry = reader.next_inode()
        if entry is None:
            break
        runs = entry.runs
        if entry.ino == target_ino:
            holed = [None if seg == _ZERO_SEGMENT else seg
                     for seg in entry.segments]
            runs = segments_to_runs(holed)
            assert _unaligned(runs), "re-encoded stream must be unaligned"
            rewritten += 1
        writer.begin_inode(entry.header)
        for count, buf in runs:
            if buf is None:
                writer.feed_holes(count)
            else:
                writer.feed_data(buf, count)
        writer.end_inode()
        if entry.acl:
            writer.write_acl(entry.ino, entry.acl)
    writer.write_end()
    assert rewritten == 1


def test_restore_recovers_unaligned_stream_byte_identically():
    source = make_fs(name="src")
    populate_small_tree(source)
    # Zero stretches at unaligned segment offsets inside otherwise dense
    # data: segment 1 of block 0, segments 5-6 of block 1, all of block 2.
    payload = bytearray(3 * BLOCK_SIZE + 700)
    for index in range(len(payload)):
        payload[index] = (index * 7) % 251 + 1
    payload[SEGMENT_SIZE : 2 * SEGMENT_SIZE] = _ZERO_SEGMENT
    payload[5 * SEGMENT_SIZE : 7 * SEGMENT_SIZE] = bytes(2 * SEGMENT_SIZE)
    payload[2 * BLOCK_SIZE : 3 * BLOCK_SIZE] = bytes(BLOCK_SIZE)
    payload = bytes(payload)
    source.create("/unaligned.bin", payload)

    dumped = make_drive(name="dumped")
    drain_engine(LogicalDump(source, dumped, level=0,
                             dumpdates=DumpDates()).run())
    rewritten = make_drive(name="rewritten")
    _reencode_with_segment_holes(dumped, rewritten,
                                 source.namei("/unaligned.bin"))

    target = make_fs(name="dst")
    drain_engine(LogicalRestore(target, rewritten).run())
    assert target.read_file("/unaligned.bin") == payload
    assert verify_trees(source, target, check_mtime=True) == []
    assert fsck(target).clean
