"""Parallel orchestration tests (jobs module + timed runs)."""

import pytest

from repro.backup import verify_trees
from repro.backup.jobs import (
    aggregate_throughput,
    concurrent_volume_dumps,
    parallel_image_dump,
    parallel_image_restore,
    parallel_logical_dump,
    parallel_logical_restore,
    split_into_qtrees,
)
from repro.backup.logical.dump import LogicalDump
from repro.backup.logical.dumpdates import DumpDates
from repro.perf import TimedRun
from repro.units import MB
from repro.wafl.filesystem import WaflFilesystem
from repro.wafl.fsck import fsck
from repro.workload import WorkloadGenerator

from tests.conftest import make_drive, make_fs


@pytest.fixture(scope="module")
def qtree_env():
    fs = make_fs(ngroups=3, ndata=4, blocks_per_disk=2500, name="home")
    generator = WorkloadGenerator(seed=99)
    paths = split_into_qtrees(fs, generator, 16 * MB, 2)
    return fs, paths


def test_split_into_qtrees_balanced(qtree_env):
    fs, paths = qtree_env
    assert paths == ["/qt0", "/qt1"]
    sizes = []
    for path in paths:
        total = sum(
            inode.size for _p, inode in fs.walk(path) if inode.is_regular
        )
        sizes.append(total)
    assert min(sizes) > 0.5 * max(sizes)
    assert fsck(fs).clean


def test_parallel_logical_dump_and_restore(qtree_env):
    fs, paths = qtree_env
    drives = [make_drive("pl%d" % index) for index in range(2)]
    run = TimedRun()
    dump_results = parallel_logical_dump(run, fs, paths, drives,
                                         dumpdates=DumpDates())
    run.run()
    assert set(dump_results) == {"ldump.0", "ldump.1"}
    for result in dump_results.values():
        assert result.elapsed > 0
        assert result.tape_bytes > 0

    target = make_fs(ngroups=3, ndata=4, blocks_per_disk=2500, name="t")
    run = TimedRun()
    parallel_logical_restore(run, target, drives, paths)
    run.run()
    assert verify_trees(fs, target, check_mtime=True, ignore=["/"]) == []


def test_parallel_image_dump_and_restore(qtree_env):
    fs, _paths = qtree_env
    drives = [make_drive("pi%d" % index) for index in range(2)]
    run = TimedRun()
    dump_result = parallel_image_dump(run, fs, drives,
                                      snapshot_name="jobs.test")
    run.run()
    assert dump_result.tape_bytes > 0
    target_volume = fs.volume.clone_empty()
    run = TimedRun()
    restore_results = parallel_image_restore(run, target_volume, drives)
    run.run()
    assert len(restore_results) == 2
    target = WaflFilesystem.mount(target_volume)
    assert verify_trees(fs, target, check_mtime=True) == []
    fs.snapshot_delete("jobs.test")


def test_mismatched_drive_count_rejected(qtree_env):
    fs, paths = qtree_env
    from repro.errors import BackupError

    run = TimedRun()
    with pytest.raises(BackupError):
        parallel_logical_dump(run, fs, paths, [make_drive()],
                              dumpdates=DumpDates())


def test_concurrent_volume_dumps_and_aggregate():
    fs_a = make_fs(name="a", blocks_per_disk=2000)
    fs_b = make_fs(name="b", blocks_per_disk=2000)
    WorkloadGenerator(seed=7).populate(fs_a, 4 * MB)
    WorkloadGenerator(seed=8).populate(fs_b, 4 * MB)
    run = TimedRun()
    results = concurrent_volume_dumps(run, [
        ("home", LogicalDump(fs_a, make_drive("cv-a"),
                             dumpdates=DumpDates()).run()),
        ("rlse", LogicalDump(fs_b, make_drive("cv-b"),
                             dumpdates=DumpDates()).run()),
    ])
    run.run()
    total_bytes, wall = aggregate_throughput(results)
    assert total_bytes > 8 * MB
    assert wall > 0
    # Concurrent jobs overlap: wall-clock is far less than the sum.
    assert wall < 0.8 * sum(r.elapsed for r in results.values())
