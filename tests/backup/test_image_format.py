"""Image stream format unit tests."""

import pytest

from repro.errors import FormatError, GeometryError
from repro.backup.physical.image import (
    CHUNK_HEADER_SIZE,
    TRAILER_SIZE,
    ImageHeader,
    pack_chunk_header,
    pack_geometry,
    pack_trailer,
    try_unpack_trailer,
    unpack_chunk_header,
    unpack_geometry,
)
from repro.raid.layout import make_geometry
from repro.wafl.fsinfo import FsInfo

from tests.conftest import make_volume


class _Stream:
    def __init__(self, data: bytes):
        self.data = data
        self.offset = 0

    def read(self, n: int) -> bytes:
        chunk = self.data[self.offset : self.offset + n]
        self.offset += n
        return chunk


def test_geometry_roundtrip():
    geometry = make_geometry(3, 10, 1234)
    packed = pack_geometry(geometry)
    recovered, consumed = unpack_geometry(packed)
    assert recovered == geometry
    assert consumed == len(packed)


def test_header_roundtrip():
    geometry = make_geometry(2, 4, 100)
    fsinfo = FsInfo(4096, geometry.data_blocks).pack()
    header = ImageHeader(geometry, cp_count=9, fsinfo_image=fsinfo,
                         incremental=True, base_cp=7,
                         includes_snapshots=True)
    header.total_blocks = 42
    recovered = ImageHeader.unpack_from_stream(_Stream(header.pack()).read)
    assert recovered.geometry == geometry
    assert recovered.cp_count == 9
    assert recovered.base_cp == 7
    assert recovered.incremental
    assert recovered.includes_snapshots
    assert recovered.total_blocks == 42
    assert recovered.fsinfo_image == fsinfo


def test_header_bad_magic():
    with pytest.raises(FormatError):
        ImageHeader.unpack_from_stream(_Stream(b"x" * 100).read)


def test_geometry_check():
    header = ImageHeader(make_geometry(2, 4, 100), 1, b"")
    matching = make_volume(ngroups=2, ndata=4, blocks_per_disk=100)
    header.check_geometry(matching)  # no raise
    other = make_volume(ngroups=1, ndata=4, blocks_per_disk=100)
    with pytest.raises(GeometryError):
        header.check_geometry(other)


def test_chunk_header_roundtrip():
    data = b"payload" * 100
    raw = pack_chunk_header(555, 3, data)
    assert len(raw) == CHUNK_HEADER_SIZE
    start, count, crc = unpack_chunk_header(raw)
    assert (start, count) == (555, 3)
    import zlib

    assert crc == zlib.crc32(data)


def test_trailer_same_size_as_chunk_header():
    assert TRAILER_SIZE == CHUNK_HEADER_SIZE


def test_trailer_probe():
    raw = pack_trailer(777)
    assert try_unpack_trailer(raw) == 777
    chunk = pack_chunk_header(1, 1, b"")
    assert try_unpack_trailer(chunk) is None


def test_chunk_header_rejects_trailer():
    with pytest.raises(FormatError):
        unpack_chunk_header(pack_trailer(5))


def test_chunk_header_rejects_garbage():
    with pytest.raises(FormatError):
        unpack_chunk_header(b"\x00" * CHUNK_HEADER_SIZE)
