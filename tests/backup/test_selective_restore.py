"""Stupidity recovery: selective single-file/subtree restores."""

import pytest

from repro.errors import NotFoundError
from repro.backup import DumpDates, LogicalDump, LogicalRestore, drain_engine
from repro.wafl.fsck import fsck

from tests.conftest import make_drive, make_fs, populate_small_tree


def prepare_tape():
    source = make_fs(name="src")
    populate_small_tree(source)
    drive = make_drive()
    drain_engine(LogicalDump(source, drive, dumpdates=DumpDates()).run())
    return source, drive


def test_single_file_recovery():
    source, drive = prepare_tape()
    target = make_fs(name="dst")
    result = drain_engine(
        LogicalRestore(target, drive, select=["/docs/readme.txt"]).run()
    )
    assert target.read_file("/docs/readme.txt") == source.read_file(
        "/docs/readme.txt"
    )
    # Nothing else was materialized (parents excepted).
    assert not target.exists("/src/main.c")
    assert not target.exists("/sparse")
    assert result.files == 1
    assert result.skipped >= 4
    assert fsck(target).clean


def test_selected_file_attrs_restored():
    source, drive = prepare_tape()
    target = make_fs(name="dst")
    drain_engine(LogicalRestore(target, drive, select=["/src/main.c"]).run())
    source_inode = source.inode(source.namei("/src/main.c"))
    target_inode = target.inode(target.namei("/src/main.c"))
    assert target_inode.perms == source_inode.perms
    assert target_inode.mtime == source_inode.mtime
    assert target.get_acl("/src/main.c") == b"ACL\x01\x02payload"


def test_directory_selection_pulls_subtree():
    source, drive = prepare_tape()
    target = make_fs(name="dst")
    drain_engine(LogicalRestore(target, drive, select=["/src"]).run())
    assert target.exists("/src/main.c")
    assert target.exists("/src/deep/data.bin")
    assert not target.exists("/docs/readme.txt")


def test_multiple_selections():
    source, drive = prepare_tape()
    target = make_fs(name="dst")
    drain_engine(
        LogicalRestore(
            target, drive,
            select=["/docs/readme.txt", "/src/deep/data.bin"],
        ).run()
    )
    assert target.exists("/docs/readme.txt")
    assert target.exists("/src/deep/data.bin")
    assert not target.exists("/src/main.c")


def test_missing_selection_raises():
    _source, drive = prepare_tape()
    target = make_fs(name="dst")
    with pytest.raises(NotFoundError):
        drain_engine(
            LogicalRestore(target, drive, select=["/no/such/file"]).run()
        )


def test_selective_restore_into_existing_tree():
    """Recover one deleted file back into a live file system."""
    source, drive = prepare_tape()
    # The "user" deletes a file by accident.
    source.unlink("/docs/readme.txt")
    result = drain_engine(
        LogicalRestore(source, drive, select=["/docs/readme.txt"]).run()
    )
    assert source.exists("/docs/readme.txt")
    assert result.files == 1
    assert fsck(source).clean
