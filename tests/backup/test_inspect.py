"""Tape inspection tests: table of contents, compare mode, estimation."""

import pytest

from repro.backup import DumpDates, LogicalDump, drain_engine
from repro.backup.logical.inspect import (
    compare_tape,
    estimate_dump,
    list_tape,
)
from repro.wafl.inode import FileType

from tests.conftest import make_drive, make_fs, populate_small_tree


@pytest.fixture()
def dumped():
    fs = make_fs(name="src")
    populate_small_tree(fs)
    drive = make_drive()
    result = drain_engine(
        LogicalDump(fs, drive, level=0, dumpdates=DumpDates()).run()
    )
    return fs, drive, result


class TestListTape:
    def test_catalog_covers_everything(self, dumped):
        fs, drive, result = dumped
        catalog = list_tape(drive)
        paths = set(catalog.paths())
        assert "/docs/readme.txt" in paths
        assert "/src/deep/data.bin" in paths
        assert "/src" in paths
        assert "/docs/link" in paths

    def test_entries_carry_attributes(self, dumped):
        fs, drive, _result = dumped
        catalog = list_tape(drive)
        entry = catalog.find("/src/main.c")
        assert entry is not None
        live = fs.inode(fs.namei("/src/main.c"))
        assert entry.size == live.size
        assert entry.perms == live.perms
        assert entry.mtime == live.mtime
        assert entry.ftype == FileType.REGULAR
        assert entry.nlink == 2  # hard-linked as /src/main-hard.c

    def test_hard_links_both_listed(self, dumped):
        _fs, drive, _result = dumped
        catalog = list_tape(drive)
        main = catalog.find("/src/main.c")
        alias = catalog.find("/src/main-hard.c")
        assert main.ino == alias.ino

    def test_counts(self, dumped):
        _fs, drive, result = dumped
        catalog = list_tape(drive)
        assert catalog.dumped_count == result.files + result.directories

    def test_listing_does_not_consume_the_tape(self, dumped):
        fs, drive, _result = dumped
        list_tape(drive)
        from repro.backup import LogicalRestore, verify_trees

        target = make_fs(name="dst")
        drain_engine(LogicalRestore(target, drive).run())
        assert verify_trees(fs, target, check_mtime=True) == []


class TestCompareTape:
    def test_fresh_tape_matches(self, dumped):
        fs, drive, _result = dumped
        assert compare_tape(fs, drive) == []

    def test_detects_modified_file(self, dumped):
        fs, drive, _result = dumped
        fs.write_file("/docs/readme.txt", b"EDITED", 0)
        problems = compare_tape(fs, drive)
        assert any("readme" in p and "differ" in p for p in problems)

    def test_detects_deleted_file(self, dumped):
        fs, drive, _result = dumped
        fs.unlink("/src/deep/data.bin")
        problems = compare_tape(fs, drive)
        assert any("data.bin" in p and "missing" in p for p in problems)

    def test_detects_attr_change(self, dumped):
        fs, drive, _result = dumped
        fs.set_attrs("/empty", perms=0o777)
        problems = compare_tape(fs, drive)
        assert any("perms" in p for p in problems)

    def test_new_live_files_ignored(self, dumped):
        fs, drive, _result = dumped
        fs.create("/made-after-dump", b"x")
        assert compare_tape(fs, drive) == []


class TestEstimateDump:
    def test_estimate_close_to_actual_full(self, dumped):
        fs, _drive, result = dumped
        estimate = estimate_dump(fs, level=0)
        assert abs(estimate - result.bytes_to_tape) <= \
            0.10 * result.bytes_to_tape

    def test_estimate_close_for_incremental(self):
        fs = make_fs(name="src")
        populate_small_tree(fs)
        dumpdates = DumpDates()
        drain_engine(
            LogicalDump(fs, make_drive("l0"), level=0,
                        dumpdates=dumpdates).run()
        )
        fs.create("/fresh", b"f" * 20000)
        estimate = estimate_dump(fs, level=1, dumpdates=dumpdates)
        drive = make_drive("l1")
        result = drain_engine(
            LogicalDump(fs, drive, level=1, dumpdates=dumpdates).run()
        )
        assert abs(estimate - result.bytes_to_tape) <= \
            max(4096, 0.15 * result.bytes_to_tape)

    def test_estimate_subtree_smaller_than_full(self, dumped):
        fs, _drive, _result = dumped
        full = estimate_dump(fs, level=0)
        subtree = estimate_dump(fs, level=0, subtree="/docs")
        assert subtree < full
