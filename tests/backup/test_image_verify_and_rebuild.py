"""Image verification and RAID rebuild tests."""

import pytest

from repro.backup import ImageDump, drain_engine
from repro.backup.physical import compare_image
from repro.errors import RaidError
from repro.wafl.consts import BLOCK_SIZE
from repro.wafl.fsck import fsck

from tests.conftest import make_drive, make_fs, populate_small_tree


class TestCompareImage:
    def test_fresh_image_matches(self):
        fs = make_fs()
        populate_small_tree(fs)
        drive = make_drive()
        drain_engine(ImageDump(fs, drive, snapshot_name="v").run())
        assert compare_image(fs.volume, drive) == []

    def test_snapshot_protects_verification_across_changes(self):
        """Because the dumped snapshot pins its blocks, the image still
        verifies even after the active file system changes."""
        fs = make_fs()
        populate_small_tree(fs)
        drive = make_drive()
        drain_engine(ImageDump(fs, drive, snapshot_name="pin").run())
        fs.write_file("/docs/readme.txt", b"post-dump edit", 0)
        fs.consistency_point()
        assert compare_image(fs.volume, drive) == []

    def test_detects_changed_blocks_after_snapshot_deleted(self):
        fs = make_fs()
        fs.create("/f", b"A" * (20 * BLOCK_SIZE))
        drive = make_drive()
        drain_engine(ImageDump(fs, drive, snapshot_name="gone").run())
        fs.snapshot_delete("gone")
        # With the snapshot gone nothing pins the dumped blocks: clobber
        # one of them directly (as block reuse eventually would).
        victim = int(fs.inode(fs.namei("/f")).direct[0])
        fs.volume.write_block(victim, b"\x5a" * BLOCK_SIZE)
        problems = compare_image(fs.volume, drive)
        assert any("differs" in p for p in problems)

    def test_detects_tape_corruption(self):
        fs = make_fs()
        fs.create("/f", b"payload" * 2000)
        drive = make_drive()
        drain_engine(ImageDump(fs, drive, snapshot_name="c").run())
        cartridge = drive.stacker.cartridges[0]
        cartridge.data[len(cartridge.data) // 2] ^= 0xFF  # inside a chunk
        problems = compare_image(fs.volume, drive)
        assert any("corrupt" in p for p in problems)

    def test_multidrive_verification(self):
        fs = make_fs()
        populate_small_tree(fs)
        drives = [make_drive("v%d" % i) for i in range(2)]
        drain_engine(ImageDump(fs, drives, snapshot_name="m").run())
        assert compare_image(fs.volume, drives) == []


class TestRaidRebuild:
    def test_rebuild_restores_full_redundancy(self):
        fs = make_fs()
        populate_small_tree(fs)
        fs.consistency_point()
        group = fs.volume.groups[0]
        failed = group.data_disks[2]
        for stripe in range(failed.nblocks):
            failed.fail_block(stripe)
        spare = group.rebuild_disk(2)
        assert spare is group.data_disks[2]
        # Data reads no longer need reconstruction...
        before = group.reconstructed_reads
        if fs.volume.cache is not None:
            fs.volume.cache.clear()
        assert fs.read_file("/src/main.c") == bytes(range(256)) * 64
        assert group.reconstructed_reads == before
        # ... and the group can survive a NEW failure.
        other = group.data_disks[0]
        for stripe in range(other.nblocks):
            other.fail_block(stripe)
        assert fs.read_file("/src/main.c") == bytes(range(256)) * 64
        assert fsck(fs).clean

    def test_rebuild_bad_index(self):
        fs = make_fs()
        with pytest.raises(RaidError):
            fs.volume.groups[0].rebuild_disk(99)

    def test_rebuild_is_bit_faithful(self):
        fs = make_fs()
        fs.create("/data", bytes(range(256)) * 160)
        fs.consistency_point()
        group = fs.volume.groups[0]
        original = {
            stripe: group.data_disks[1].read_block(stripe)
            for stripe in range(group.data_disks[1].nblocks)
            if group.data_disks[1].is_allocated(stripe)
        }
        for stripe in range(group.data_disks[1].nblocks):
            group.data_disks[1].fail_block(stripe)
        group.rebuild_disk(1)
        for stripe, data in original.items():
            assert group.data_disks[1].read_block(stripe) == data
