"""Edge cases of the dumpdates supersede rule in ``record()``.

The invariants under test: comparisons are strict, so equal-date records
(ties in the same clock tick) survive and the database replays to the
same state in any order; records that could never be selected by
``base_for`` are not stored.
"""

from __future__ import annotations

import pytest

from repro.backup.logical.dumpdates import DumpDates
from repro.errors import IncrementalError


class TestSupersedeOnRecord:
    def test_newer_lower_level_deletes_older_deeper(self):
        dates = DumpDates()
        dates.record("home", "/", 2, 100)
        dates.record("home", "/", 1, 200)
        assert dict(dates.history("home", "/")) == {1: 200}

    def test_equal_date_deeper_record_survives(self):
        """A level 0 and level 2 cut in the same clock tick both stay."""
        dates = DumpDates()
        dates.record("home", "/", 0, 100)
        dates.record("home", "/", 2, 100)
        assert dict(dates.history("home", "/")) == {0: 100, 2: 100}
        # And replaying in the opposite order lands in the same state.
        replay = DumpDates()
        replay.record("home", "/", 2, 100)
        replay.record("home", "/", 0, 100)
        assert replay._records == dates._records

    def test_base_for_tie_prefers_deeper_level(self):
        dates = DumpDates()
        dates.record("home", "/", 0, 100)
        dates.record("home", "/", 1, 100)
        # Both candidates share the date; the deeper one wins the
        # max((date, level)) comparison, yielding the smaller increment.
        assert dates.base_for("home", "/", 2) == (100, 1)

    def test_incoming_superseded_record_is_dropped(self):
        """A deeper record older than an existing lower level is dead on
        arrival: ``base_for`` could never select it."""
        dates = DumpDates()
        dates.record("home", "/", 1, 200)
        dates.record("home", "/", 2, 100)
        assert dict(dates.history("home", "/")) == {1: 200}

    def test_incoming_equal_date_deeper_is_kept(self):
        dates = DumpDates()
        dates.record("home", "/", 1, 200)
        dates.record("home", "/", 2, 200)
        assert dict(dates.history("home", "/")) == {1: 200, 2: 200}


class TestSameLevelRerecord:
    def test_rerecord_keeps_newer_date(self):
        dates = DumpDates()
        dates.record("home", "/", 1, 100)
        dates.record("home", "/", 1, 150)
        assert dates.base_for("home", "/", 2) == (150, 1)

    def test_rerecord_with_older_date_is_ignored(self):
        """A stale replay (e.g. re-applying an old journal) cannot move
        the level backwards."""
        dates = DumpDates()
        dates.record("home", "/", 1, 150)
        dates.record("home", "/", 1, 100)
        assert dates.base_for("home", "/", 2) == (150, 1)

    def test_rerecord_same_date_is_a_noop(self):
        dates = DumpDates()
        dates.record("home", "/", 1, 150)
        before = dict(dates._records[("home", "/")])
        dates.record("home", "/", 1, 150)
        assert dates._records[("home", "/")] == before

    def test_fresh_rerecord_supersedes_deeper_levels(self):
        dates = DumpDates()
        dates.record("home", "/", 0, 100)
        dates.record("home", "/", 2, 120)
        dates.record("home", "/", 0, 150)
        assert dict(dates.history("home", "/")) == {0: 150}


class TestReplayDeterminism:
    def test_any_order_replay_converges(self):
        """The final database depends only on the record set, not the
        arrival order — what makes catalog rebuild-on-load safe."""
        records = [(0, 100), (2, 103), (2, 106), (1, 110), (2, 113),
                   (0, 150), (2, 153)]
        import itertools
        baseline = None
        for perm in itertools.permutations(records):
            dates = DumpDates()
            for level, date in perm:
                dates.record("home", "/", level, date)
            if baseline is None:
                baseline = dates._records
            assert dates._records == baseline, perm
        assert dict(baseline[("home", "/")]) == {0: 150, 2: 153}

    def test_subtrees_are_independent(self):
        dates = DumpDates()
        dates.record("home", "/", 0, 100)
        dates.record("home", "/qt0", 0, 300)
        dates.record("home", "/", 1, 200)
        assert dates.base_for("home", "/", 2) == (200, 1)
        assert dates.base_for("home", "/qt0", 1) == (300, 0)

    def test_level_bounds_still_enforced(self):
        dates = DumpDates()
        with pytest.raises(IncrementalError):
            dates.record("home", "/", 10, 100)
        with pytest.raises(IncrementalError):
            dates.record("home", "/", -1, 100)
