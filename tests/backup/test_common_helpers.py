"""Helpers in repro.backup.common and perf op utilities."""

import pytest

from repro.backup.common import (
    MAX_RUN_BLOCKS,
    BackupResult,
    RecorderScope,
    chunked_cpu,
    drain_engine,
)
from repro.perf.ops import CpuOp, DiskReadOp, SleepOp, scale_ops

from tests.conftest import make_volume


def test_chunked_cpu_sums_to_total():
    ops = chunked_cpu(0.173, "stage", max_piece=0.05)
    assert sum(op.seconds for op in ops) == pytest.approx(0.173)
    assert all(op.seconds <= 0.05 + 1e-12 for op in ops)
    assert all(op.stage == "stage" for op in ops)


def test_chunked_cpu_zero():
    assert chunked_cpu(0.0, "s") == []


def test_drain_engine_returns_value():
    def engine():
        yield CpuOp(0.1)
        yield SleepOp(1.0)
        return "payload"

    assert drain_engine(engine()) == "payload"


def test_recorder_scope_restores_previous():
    volume = make_volume()
    outer = RecorderScope(volume)
    with outer:
        volume.write_block(10, bytes(4096))
        with RecorderScope(volume) as inner:
            volume.write_block(11, bytes(4096))
        # Inner scope captured only its own access...
        assert inner.recorder.total_written_blocks == 1
        volume.write_block(12, bytes(4096))
    # ... and the outer recorder got the rest.
    assert outer.recorder.total_written_blocks == 2
    assert volume.recorder is None


def test_recorder_scope_splits_long_runs():
    volume = make_volume(blocks_per_disk=3000)
    with RecorderScope(volume) as scope:
        volume.write_run(0, bytes((MAX_RUN_BLOCKS + 50) * 4096))
    ops = scope.drain_ops("x")
    assert len(ops) == 2
    assert ops[0].nblocks == MAX_RUN_BLOCKS
    assert ops[1].nblocks == 50


def test_scale_ops_multiplies_cpu_only():
    volume = make_volume()
    ops = [CpuOp(1.0), DiskReadOp(volume, 0, 1), CpuOp(2.0)]
    scaled = list(scale_ops(iter(ops), 0.5))
    assert scaled[0].seconds == pytest.approx(0.5)
    assert scaled[2].seconds == pytest.approx(1.0)
    assert scaled[1].nblocks == 1


def test_backup_result_repr():
    result = BackupResult()
    result.files = 3
    assert "files=3" in repr(result)
