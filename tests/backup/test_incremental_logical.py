"""Incremental logical dump/restore chains (levels 0-9)."""

import pytest

from repro.errors import IncrementalError
from repro.backup import (
    DumpDates,
    LogicalDump,
    LogicalRestore,
    drain_engine,
    verify_trees,
)
from repro.wafl.fsck import fsck

from tests.conftest import make_drive, make_fs, populate_small_tree


class Chain:
    """Helper that runs a dump chain and mirrors it on restore."""

    def __init__(self):
        self.source = make_fs(name="src")
        self.dumpdates = DumpDates()
        self.tapes = []

    def dump(self, level):
        drive = make_drive("l%d" % level)
        result = drain_engine(
            LogicalDump(self.source, drive, level=level,
                        dumpdates=self.dumpdates).run()
        )
        self.tapes.append((level, drive, result))
        return result

    def restore_all(self):
        target = make_fs(name="dst")
        symtab = None
        for _level, drive, _result in self.tapes:
            result = drain_engine(
                LogicalRestore(target, drive, symtab=symtab).run()
            )
            symtab = result.symtab
        return target


def test_incremental_contains_only_changes():
    chain = Chain()
    populate_small_tree(chain.source)
    full = chain.dump(0)
    chain.source.write_file("/docs/readme.txt", b"updated", 0)
    incremental = chain.dump(1)
    assert incremental.files < full.files
    assert incremental.files == 1


def test_chain_with_modify_delete_create():
    chain = Chain()
    source = chain.source
    populate_small_tree(source)
    chain.dump(0)
    source.write_file("/src/main.c", b"v2" * 600, 0)
    source.unlink("/src/deep/data.bin")
    source.create("/src/newfile", b"brand new")
    chain.dump(1)
    target = chain.restore_all()
    assert verify_trees(source, target, check_mtime=True) == []
    assert fsck(target).clean


def test_chain_with_renames_and_moves():
    chain = Chain()
    source = chain.source
    populate_small_tree(source)
    chain.dump(0)
    source.rename("/docs/readme.txt", "/docs/README")
    source.rename("/src/deep", "/docs/moved-deep")
    source.mkdir("/brand-new-dir")
    source.create("/brand-new-dir/x", b"x")
    chain.dump(1)
    target = chain.restore_all()
    assert verify_trees(source, target, check_mtime=True) == []
    assert fsck(target).clean


def test_multi_level_chain_0_1_2():
    chain = Chain()
    source = chain.source
    populate_small_tree(source)
    chain.dump(0)
    source.create("/level1-file", b"1")
    chain.dump(1)
    source.create("/level2-file", b"2")
    source.unlink("/level1-file")
    chain.dump(2)
    target = chain.restore_all()
    assert verify_trees(source, target, check_mtime=True) == []
    assert not target.exists("/level1-file")
    assert target.exists("/level2-file")


def test_level_retake_supersedes():
    """A new level-1 after another level-1 still uses the level-0 base."""
    chain = Chain()
    source = chain.source
    source.create("/base", b"b")
    chain.dump(0)
    source.create("/first", b"1")
    chain.dump(1)
    source.create("/second", b"2")
    result = chain.dump(1)  # re-dump level 1: includes BOTH changes
    assert result.files == 2
    # Restore chain: level 0 plus only the LAST level 1.
    target = make_fs(name="dst")
    level0 = chain.tapes[0][1]
    last_level1 = chain.tapes[2][1]
    r0 = drain_engine(LogicalRestore(target, level0).run())
    drain_engine(LogicalRestore(target, last_level1, symtab=r0.symtab).run())
    assert verify_trees(source, target, check_mtime=True) == []


def test_incremental_without_base_rejected():
    source = make_fs()
    source.create("/f")
    drive = make_drive()
    with pytest.raises(IncrementalError):
        drain_engine(
            LogicalDump(source, drive, level=3, dumpdates=DumpDates()).run()
        )


def test_hardlink_added_in_incremental():
    chain = Chain()
    source = chain.source
    source.create("/orig", b"x" * 5000)
    chain.dump(0)
    source.link("/orig", "/alias")
    chain.dump(1)
    target = chain.restore_all()
    assert target.namei("/orig") == target.namei("/alias")
    assert verify_trees(source, target, check_mtime=True) == []


def test_attr_only_change_travels():
    chain = Chain()
    source = chain.source
    source.create("/f", b"data")
    chain.dump(0)
    source.set_attrs("/f", perms=0o600, uid=42)
    source.set_acl("/f", b"new-acl")
    chain.dump(1)
    target = chain.restore_all()
    inode = target.inode(target.namei("/f"))
    assert inode.perms == 0o600
    assert inode.uid == 42
    assert target.get_acl("/f") == b"new-acl"


def test_inode_reuse_across_incremental():
    """An inode number freed and reused as a different object."""
    chain = Chain()
    source = chain.source
    source.create("/victim", b"old content")
    chain.dump(0)
    victim_ino = source.namei("/victim")
    source.unlink("/victim")
    source.create("/phoenix", b"reborn")  # reuses the lowest free ino
    assert source.namei("/phoenix") == victim_ino
    chain.dump(1)
    target = chain.restore_all()
    assert not target.exists("/victim")
    assert target.read_file("/phoenix") == b"reborn"
    assert verify_trees(source, target, check_mtime=True) == []


def test_inode_reuse_file_becomes_directory():
    chain = Chain()
    source = chain.source
    source.create("/thing", b"file")
    chain.dump(0)
    ino = source.namei("/thing")
    source.unlink("/thing")
    new_ino = source.mkdir("/thing")
    assert new_ino == ino
    source.create("/thing/inside", b"i")
    chain.dump(1)
    target = chain.restore_all()
    assert target.read_file("/thing/inside") == b"i"
    assert verify_trees(source, target, check_mtime=True) == []


def test_directory_becomes_file():
    chain = Chain()
    source = chain.source
    source.mkdir("/thing")
    source.create("/thing/inside", b"i")
    chain.dump(0)
    source.unlink("/thing/inside")
    source.rmdir("/thing")
    source.create("/thing", b"now a file")
    chain.dump(1)
    target = chain.restore_all()
    assert target.read_file("/thing") == b"now a file"
    assert verify_trees(source, target, check_mtime=True) == []


def test_ten_level_chain():
    chain = Chain()
    source = chain.source
    source.create("/base", b"0")
    chain.dump(0)
    for level in range(1, 10):
        source.create("/file-at-%d" % level, bytes([level]) * 100)
        if level > 2:
            source.unlink("/file-at-%d" % (level - 2))
        chain.dump(level)
    target = chain.restore_all()
    assert verify_trees(source, target, check_mtime=True) == []
    assert fsck(target).clean
