"""Dumpdates, verify helpers, incremental semantics, and robustness."""

import pytest

from repro.errors import IncrementalError
from repro.backup import (
    DumpDates,
    LogicalDump,
    LogicalRestore,
    drain_engine,
    verify_trees,
)
from repro.backup.physical.incremental import (
    BLOCK_STATES,
    DELETED,
    NEWLY_WRITTEN,
    NOT_IN_EITHER,
    UNCHANGED,
    block_state,
    classify_all,
    coalesce_block_array,
    spans_with_readthrough,
)

from tests.conftest import make_drive, make_fs, populate_small_tree


class TestDumpDates:
    def test_level0_base_is_epoch(self):
        dates = DumpDates()
        assert dates.base_for("fs", "/", 0) == (0, None)

    def test_base_is_most_recent_lower_level(self):
        dates = DumpDates()
        dates.record("fs", "/", 0, date=100)
        dates.record("fs", "/", 1, date=200)
        assert dates.base_for("fs", "/", 2) == (200, 1)
        assert dates.base_for("fs", "/", 1) == (100, 0)

    def test_missing_base_rejected(self):
        dates = DumpDates()
        with pytest.raises(IncrementalError):
            dates.base_for("fs", "/", 1)

    def test_level_out_of_range(self):
        dates = DumpDates()
        with pytest.raises(IncrementalError):
            dates.record("fs", "/", 10, date=1)
        with pytest.raises(IncrementalError):
            dates.base_for("fs", "/", -1)

    def test_new_lower_level_supersedes_deeper(self):
        dates = DumpDates()
        dates.record("fs", "/", 0, date=100)
        dates.record("fs", "/", 2, date=150)
        dates.record("fs", "/", 0, date=200)  # fresh full dump
        # The old level-2 record is stale now.
        assert dates.base_for("fs", "/", 3) == (200, 0)

    def test_subtrees_are_independent(self):
        dates = DumpDates()
        dates.record("fs", "/qt0", 0, date=100)
        with pytest.raises(IncrementalError):
            dates.base_for("fs", "/qt1", 1)

    def test_history_most_recent_first(self):
        dates = DumpDates()
        dates.record("fs", "/", 0, date=10)
        dates.record("fs", "/", 1, date=30)
        history = dates.history("fs", "/")
        assert history[0] == (1, 30)


class TestTable1Semantics:
    def test_block_state_table(self):
        assert block_state(0, 0) == NOT_IN_EITHER
        assert block_state(0, 1) == NEWLY_WRITTEN
        assert block_state(1, 0) == DELETED
        assert block_state(1, 1) == UNCHANGED
        assert len(BLOCK_STATES) == 4

    def test_classify_all_sums_to_volume(self):
        fs = make_fs()
        populate_small_tree(fs)
        a = fs.snapshot_create("A")
        fs.create("/x", b"1" * 9000)
        b = fs.snapshot_create("B")
        counts = classify_all(fs.blockmap, a.snap_id, b.snap_id)
        assert sum(counts.values()) == fs.blockmap.nblocks

    def test_coalesce_block_array(self):
        import numpy as np

        runs = coalesce_block_array(np.array([1, 2, 3, 7, 8, 20]))
        assert runs == [(1, 3), (7, 2), (20, 1)]

    def test_coalesce_respects_max_run(self):
        import numpy as np

        runs = coalesce_block_array(np.arange(10), max_run=4)
        assert runs == [(0, 4), (4, 4), (8, 2)]

    def test_coalesce_empty(self):
        import numpy as np

        assert coalesce_block_array(np.array([], dtype=int)) == []

    def test_spans_read_through_small_gaps(self):
        spans = spans_with_readthrough([(0, 10), (15, 10), (500, 5)],
                                       gap_threshold=16)
        assert len(spans) == 2
        start, length, runs = spans[0]
        assert (start, length) == (0, 25)
        assert runs == [(0, 10), (15, 10)]
        assert spans[1][0] == 500

    def test_spans_respect_max_span(self):
        spans = spans_with_readthrough([(0, 100), (110, 100)],
                                       gap_threshold=64, max_span=150)
        assert len(spans) == 2


class TestVerify:
    def test_detects_data_difference(self):
        a = make_fs(name="a")
        b = make_fs(name="b")
        a.create("/f", b"one")
        b.create("/f", b"two")
        problems = verify_trees(a, b, check_mtime=False)
        assert any("data differs" in p for p in problems)

    def test_detects_missing_and_extra(self):
        a = make_fs(name="a")
        b = make_fs(name="b")
        a.create("/only-in-a")
        b.create("/only-in-b")
        problems = verify_trees(a, b, check_mtime=False)
        assert any("missing in target" in p for p in problems)
        assert any("extra in target" in p for p in problems)

    def test_detects_attr_difference(self):
        a = make_fs(name="a")
        b = make_fs(name="b")
        a.create("/f", b"x", perms=0o600)
        b.create("/f", b"x", perms=0o644)
        problems = verify_trees(a, b, check_mtime=False)
        assert any("perms" in p for p in problems)

    def test_detects_hardlink_structure(self):
        a = make_fs(name="a")
        b = make_fs(name="b")
        a.create("/f", b"x")
        a.link("/f", "/g")
        b.create("/f", b"x")
        b.create("/g", b"x")
        problems = verify_trees(a, b, check_attrs=False)
        assert any("hard-link" in p or "nlink" in p for p in problems)

    def test_identical_trees_clean(self):
        a = make_fs(name="a")
        populate_small_tree(a)
        drive = make_drive()
        drain_engine(LogicalDump(a, drive, dumpdates=DumpDates()).run())
        b = make_fs(name="b")
        drain_engine(LogicalRestore(b, drive).run())
        assert verify_trees(a, b, check_mtime=True) == []


class TestRobustness:
    def test_resync_restore_recovers_other_files(self):
        source = make_fs(name="src")
        for index in range(8):
            source.create("/file%d" % index, bytes([index]) * 6000)
        drive = make_drive()
        drain_engine(LogicalDump(source, drive, dumpdates=DumpDates()).run())
        # Corrupt a 1 KB region in the middle of the stream.
        cartridge = drive.stacker.cartridges[0]
        middle = (len(cartridge.data) // 2 // 1024) * 1024
        cartridge.data[middle : middle + 1024] = b"\xa5" * 1024
        target = make_fs(name="dst")
        drain_engine(LogicalRestore(target, drive, resync=True).run())
        # "A minor tape corruption will usually affect only that single
        # file": at most one file is lost or garbled, the rest are intact.
        intact = sum(
            1 for index in range(8)
            if target.exists("/file%d" % index)
            and target.read_file("/file%d" % index) == bytes([index]) * 6000
        )
        assert intact >= 7

    def test_restore_from_degraded_raid_source(self):
        """Dump a file system whose volume lost a disk: RAID reconstructs
        under both backup paths."""
        source = make_fs(name="src")
        populate_small_tree(source)
        source.consistency_point()
        # Fail an entire data disk in group 0.
        failed = source.volume.groups[0].data_disks[1]
        for stripe in range(failed.nblocks):
            failed.fail_block(stripe)
        if source.volume.cache is not None:
            source.volume.cache.clear()
        drive = make_drive()
        drain_engine(LogicalDump(source, drive, dumpdates=DumpDates()).run())
        target = make_fs(name="dst")
        drain_engine(LogicalRestore(target, drive).run())
        assert target.read_file("/src/main.c") == bytes(range(256)) * 64
