"""NVRAM operation log unit tests."""

import pytest

from repro.errors import FilesystemError
from repro.nvram.log import OP_OVERHEAD, LoggedOp, NvramLog


def op(payload=b"", method="create"):
    return LoggedOp(method, (payload,), {})


def test_op_size_includes_payload():
    assert op(b"x" * 100).nbytes == OP_OVERHEAD + 100
    assert LoggedOp("m", ("path",), {"data": b"12"}).nbytes == OP_OVERHEAD + 6


def test_append_until_half_full():
    log = NvramLog(capacity=4 * OP_OVERHEAD)
    assert log.try_append(op())
    assert log.try_append(op())
    assert not log.try_append(op())  # active half full


def test_switch_halves_drains():
    log = NvramLog(capacity=4 * OP_OVERHEAD)
    log.try_append(op())
    log.try_append(op())
    log.switch_halves()
    assert len(log) == 0
    assert log.try_append(op())


def test_pending_ops_in_order():
    log = NvramLog(capacity=1024 * 1024)
    for index in range(5):
        log.try_append(LoggedOp("m%d" % index, (), {}))
    assert [o.method for o in log.pending_ops()] == [
        "m0", "m1", "m2", "m3", "m4",
    ]


def test_oversized_op_rejected():
    log = NvramLog(capacity=1024)
    with pytest.raises(FilesystemError):
        log.try_append(op(b"x" * 2048))


def test_failed_nvram_swallows_ops():
    log = NvramLog(capacity=1024 * 1024)
    log.try_append(op())
    log.fail()
    assert log.try_append(op())  # accepted but not stored
    assert len(log) == 0
    assert log.pending_ops() == []


def test_tiny_capacity_rejected():
    with pytest.raises(FilesystemError):
        NvramLog(capacity=10)


def test_accounting_counters():
    log = NvramLog(capacity=1024 * 1024)
    log.try_append(op(b"abc"))
    assert log.total_ops_logged == 1
    assert log.total_bytes_logged == OP_OVERHEAD + 3
    assert log.pending_bytes == OP_OVERHEAD + 3
