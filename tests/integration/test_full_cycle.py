"""End-to-end integration: realistic workloads through the whole stack."""

import pytest

from repro.backup import (
    DumpDates,
    ImageDump,
    ImageRestore,
    LogicalDump,
    LogicalRestore,
    drain_engine,
    verify_trees,
)
from repro.units import MB
from repro.wafl.filesystem import WaflFilesystem
from repro.wafl.fsck import fsck, fsck_snapshot
from repro.workload import (
    AgingConfig,
    MutationConfig,
    WorkloadGenerator,
    age_filesystem,
    apply_mutations,
)

from tests.conftest import make_drive, make_fs


@pytest.fixture(scope="module")
def aged_source():
    fs = make_fs(ngroups=2, ndata=6, blocks_per_disk=2500, name="src")
    generator = WorkloadGenerator(seed=77)
    tree = generator.populate(fs, 24 * MB)
    age_filesystem(fs, tree, AgingConfig(rounds=2, churn_fraction=0.25,
                                         seed=78))
    fs.consistency_point()
    return fs, tree


def test_logical_cycle_on_aged_workload(aged_source):
    fs, _tree = aged_source
    drive = make_drive(tapes=4, capacity=64 * MB)
    dump = drain_engine(LogicalDump(fs, drive, dumpdates=DumpDates()).run())
    assert dump.files > 50
    target = make_fs(ngroups=1, ndata=8, blocks_per_disk=2500, name="ldst")
    drain_engine(LogicalRestore(target, drive).run())
    assert verify_trees(fs, target, check_mtime=True) == []
    assert fsck(target).clean


def test_physical_cycle_on_aged_workload(aged_source):
    fs, _tree = aged_source
    drive = make_drive(tapes=4, capacity=64 * MB)
    drain_engine(ImageDump(fs, drive, snapshot_name="cycle").run())
    target_volume = fs.volume.clone_empty()
    drain_engine(ImageRestore(target_volume, drive).run())
    target = WaflFilesystem.mount(target_volume)
    assert verify_trees(fs, target, check_mtime=True) == []
    assert fsck(target).clean
    fs.snapshot_delete("cycle")


def test_weekly_backup_schedule(aged_source):
    """A realistic week: level 0 Sunday, level 1 daily, with churn."""
    fs, tree = aged_source
    dumpdates = DumpDates()
    tapes = []
    drive = make_drive(tapes=4, capacity=64 * MB)
    drain_engine(LogicalDump(fs, drive, level=0, dumpdates=dumpdates).run())
    tapes.append(drive)
    for day in range(1, 4):
        apply_mutations(fs, tree, MutationConfig(seed=100 + day,
                                                 modify_fraction=0.04,
                                                 delete_fraction=0.01,
                                                 create_fraction=0.02,
                                                 rename_fraction=0.005))
        drive = make_drive(tapes=4, capacity=64 * MB)
        drain_engine(
            LogicalDump(fs, drive, level=day, dumpdates=dumpdates).run()
        )
        tapes.append(drive)
    target = make_fs(ngroups=2, ndata=6, blocks_per_disk=2500, name="wdst")
    symtab = None
    for drive in tapes:
        result = drain_engine(
            LogicalRestore(target, drive, symtab=symtab).run()
        )
        symtab = result.symtab
    diffs = verify_trees(fs, target, check_mtime=True)
    assert diffs == [], diffs[:10]
    assert fsck(target).clean


def test_snapshot_schedule_with_backups(aged_source):
    """Hourly-style snapshots coexist with dump's own snapshots."""
    fs, tree = aged_source
    fs.snapshot_create("hourly.0")
    apply_mutations(fs, tree, MutationConfig(seed=55, modify_fraction=0.02,
                                             delete_fraction=0.0,
                                             create_fraction=0.01,
                                             rename_fraction=0.0))
    fs.snapshot_create("hourly.1")
    drive = make_drive(tapes=4, capacity=64 * MB)
    drain_engine(LogicalDump(fs, drive, dumpdates=DumpDates()).run())
    assert {s.name for s in fs.snapshots()} >= {"hourly.0", "hourly.1"}
    assert fsck_snapshot(fs, "hourly.0").clean
    assert fsck_snapshot(fs, "hourly.1").clean
    fs.snapshot_delete("hourly.0")
    fs.snapshot_delete("hourly.1")
    assert fsck(fs).clean


def test_disaster_recovery_after_media_loss(aged_source):
    """Physical backup, lose a disk beyond RAID's protection, rebuild."""
    fs, _tree = aged_source
    drive = make_drive(tapes=4, capacity=64 * MB)
    drain_engine(ImageDump(fs, drive, snapshot_name="dr").run())
    # Disaster: the whole volume is gone; new media, same geometry.
    new_volume = fs.volume.clone_empty()
    drain_engine(ImageRestore(new_volume, drive).run())
    recovered = WaflFilesystem.mount(new_volume)
    assert verify_trees(fs, recovered, check_mtime=True) == []
    fs.snapshot_delete("dr")


def test_cross_strategy_equivalence(aged_source):
    """Both strategies restore the same source to identical trees."""
    fs, _tree = aged_source
    ldrive = make_drive(tapes=4, capacity=64 * MB)
    pdrive = make_drive(tapes=4, capacity=64 * MB)
    drain_engine(LogicalDump(fs, ldrive, dumpdates=DumpDates()).run())
    drain_engine(ImageDump(fs, pdrive, snapshot_name="x").run())
    fs.snapshot_delete("x")

    logical_target = make_fs(ngroups=2, ndata=6, blocks_per_disk=2500,
                             name="lt")
    drain_engine(LogicalRestore(logical_target, ldrive).run())
    physical_volume = fs.volume.clone_empty()
    drain_engine(ImageRestore(physical_volume, pdrive).run())
    physical_target = WaflFilesystem.mount(physical_volume)
    assert verify_trees(logical_target, physical_target,
                        check_mtime=True) == []
