"""End-to-end tests for the repro-backup CLI."""

import json
import os

import pytest

from repro.cli import main


def run(args):
    return main([str(a) for a in args])


@pytest.fixture()
def workdir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_mkfs_and_df(workdir, capsys):
    assert run(["mkfs", "vol.bin", "--groups", 1, "--disks", 4,
                "--blocks", 1500]) == 0
    assert run(["df", "vol.bin"]) == 0
    out = capsys.readouterr().out
    assert "formatted vol.bin" in out
    assert "snapshots: 0" in out


def test_put_get_roundtrip(workdir, capsys):
    run(["mkfs", "vol.bin"])
    source = workdir / "in.txt"
    source.write_bytes(b"cli payload \x00\x01\x02")
    assert run(["put", "vol.bin", source, "/f.txt"]) == 0
    assert run(["get", "vol.bin", "/f.txt", workdir / "out.txt"]) == 0
    assert (workdir / "out.txt").read_bytes() == b"cli payload \x00\x01\x02"


def test_ls_and_rm(workdir, capsys):
    run(["mkfs", "vol.bin"])
    (workdir / "x").write_bytes(b"x")
    run(["put", "vol.bin", workdir / "x", "/x"])
    run(["ls", "vol.bin"])
    assert "/x" in capsys.readouterr().out
    assert run(["rm", "vol.bin", "/x"]) == 0
    capsys.readouterr()
    run(["ls", "vol.bin"])
    assert "/x" not in capsys.readouterr().out


def test_snapshot_lifecycle(workdir, capsys):
    run(["mkfs", "vol.bin"])
    assert run(["snap", "vol.bin", "create", "s1"]) == 0
    run(["snap", "vol.bin", "list"])
    assert "s1" in capsys.readouterr().out
    assert run(["snap", "vol.bin", "delete", "s1"]) == 0
    capsys.readouterr()
    run(["snap", "vol.bin", "list"])
    assert "s1" not in capsys.readouterr().out


def test_dump_restore_workflow(workdir, capsys):
    run(["mkfs", "vol.bin"])
    run(["populate", "vol.bin", "--bytes", "2MB", "--seed", 5])
    assert run(["dump", "vol.bin", "t0.tape", "--level", 0,
                "--dumpdates", "dd.json"]) == 0
    assert os.path.exists("dd.json")
    assert run(["restore", "t0.tape", "new.bin", "--mkfs",
                "--symtab", "sym.json"]) == 0
    assert run(["verify", "new.bin", "t0.tape"]) == 0
    assert json.load(open("sym.json"))


def test_incremental_chain_via_cli(workdir, capsys):
    run(["mkfs", "vol.bin"])
    run(["populate", "vol.bin", "--bytes", "1MB", "--seed", 6])
    run(["dump", "vol.bin", "l0.tape", "--level", 0,
         "--dumpdates", "dd.json"])
    source = workdir / "extra.txt"
    source.write_bytes(b"added later")
    run(["put", "vol.bin", source, "/extra.txt"])
    run(["dump", "vol.bin", "l1.tape", "--level", 1,
         "--dumpdates", "dd.json"])
    run(["restore", "l0.tape", "new.bin", "--mkfs", "--symtab", "s.json"])
    run(["restore", "l1.tape", "new.bin", "--symtab", "s.json"])
    assert run(["get", "new.bin", "/extra.txt", workdir / "back.txt"]) == 0
    assert (workdir / "back.txt").read_bytes() == b"added later"


def test_selective_restore_via_cli(workdir, capsys):
    run(["mkfs", "vol.bin"])
    (workdir / "a").write_bytes(b"aa")
    (workdir / "b").write_bytes(b"bb")
    run(["put", "vol.bin", workdir / "a", "/a"])
    run(["put", "vol.bin", workdir / "b", "/b"])
    run(["dump", "vol.bin", "t.tape"])
    run(["restore", "t.tape", "new.bin", "--mkfs", "--select", "/a"])
    capsys.readouterr()
    run(["ls", "new.bin"])
    out = capsys.readouterr().out
    assert "/a" in out
    assert "/b" not in out


def test_image_dump_restore_via_cli(workdir, capsys):
    run(["mkfs", "vol.bin"])
    run(["populate", "vol.bin", "--bytes", "1MB", "--seed", 7])
    assert run(["image-dump", "vol.bin", "img.bin",
                "--snapshot", "base"]) == 0
    assert run(["image-restore", "img.bin", "replica.bin"]) == 0
    assert run(["fsck", "replica.bin", "--parity"]) == 0


def test_image_incremental_via_cli(workdir, capsys):
    run(["mkfs", "vol.bin"])
    run(["populate", "vol.bin", "--bytes", "1MB", "--seed", 8])
    run(["image-dump", "vol.bin", "full.img", "--snapshot", "A"])
    (workdir / "n").write_bytes(b"new")
    run(["put", "vol.bin", workdir / "n", "/n"])
    run(["image-dump", "vol.bin", "incr.img", "--snapshot", "B",
         "--base", "A"])
    run(["image-restore", "full.img", "replica.bin"])
    run(["image-restore", "incr.img", "replica.bin"])
    assert run(["get", "replica.bin", "/n", workdir / "n2"]) == 0
    assert (workdir / "n2").read_bytes() == b"new"


def test_toc_and_estimate(workdir, capsys):
    run(["mkfs", "vol.bin"])
    (workdir / "a").write_bytes(b"a" * 5000)
    run(["put", "vol.bin", workdir / "a", "/a"])
    run(["dump", "vol.bin", "t.tape"])
    capsys.readouterr()
    assert run(["toc", "t.tape"]) == 0
    assert "/a" in capsys.readouterr().out
    assert run(["estimate", "vol.bin", "--level", 0]) == 0
    assert "estimated level-0 dump" in capsys.readouterr().out


def test_verify_detects_change(workdir, capsys):
    run(["mkfs", "vol.bin"])
    (workdir / "a").write_bytes(b"original")
    run(["put", "vol.bin", workdir / "a", "/a"])
    run(["dump", "vol.bin", "t.tape"])
    (workdir / "a2").write_bytes(b"CHANGED!")
    run(["put", "vol.bin", workdir / "a2", "/a"])
    assert run(["verify", "vol.bin", "t.tape"]) == 1


def test_scrub(workdir, capsys):
    run(["mkfs", "vol.bin"])
    assert run(["scrub", "vol.bin"]) == 0
    assert "stripes repaired" in capsys.readouterr().out


def test_error_reporting(workdir, capsys):
    run(["mkfs", "vol.bin"])
    assert run(["get", "vol.bin", "/missing", workdir / "o"]) == 2
    assert "error" in capsys.readouterr().err


def test_image_verify_via_cli(workdir, capsys):
    run(["mkfs", "vol.bin"])
    run(["populate", "vol.bin", "--bytes", "1MB", "--seed", 9])
    run(["image-dump", "vol.bin", "img.bin", "--snapshot", "v"])
    assert run(["verify", "vol.bin", "img.bin", "--image"]) == 0
    out = capsys.readouterr().out
    assert "matches" in out


def test_rebuild_via_cli(workdir, capsys):
    run(["mkfs", "vol.bin"])
    run(["populate", "vol.bin", "--bytes", "1MB", "--seed", 10])
    assert run(["rebuild", "vol.bin", "--group", 0, "--disk", 1]) == 0
    assert run(["fsck", "vol.bin", "--parity"]) == 0


def test_dumpdates_listing_via_cli(workdir, capsys):
    run(["mkfs", "vol.bin"])
    run(["populate", "vol.bin", "--bytes", "512KB", "--seed", 11])
    run(["dump", "vol.bin", "l0.tape", "--level", 0,
         "--dumpdates", "dd.json"])
    run(["dump", "vol.bin", "l2.tape", "--level", 2,
         "--dumpdates", "dd.json"])
    capsys.readouterr()
    assert run(["dumpdates", "dd.json"]) == 0
    out = capsys.readouterr().out
    assert "2 record(s)" in out
    lines = [line.split() for line in out.splitlines()
             if line.startswith("vol")]
    assert [line[2] for line in lines] == ["0", "2"]
    # No source at all is an error.
    assert run(["dumpdates"]) == 2


class TestManagerWorkflow:
    """run-campaign -> catalog -> restore-pit -> policy -> prune, each a
    separate ``main()`` invocation, so every step survives a restart."""

    DAYS = 5  # GFS(4,2): full day 0, level 1 day 4, level 2 between

    @pytest.fixture()
    def campaign(self, workdir, capsys):
        assert run(["run-campaign", "cat.json", "--pool", "pool.med",
                    "--volume", "home=logical", "--volume", "rlse=image",
                    "--days", self.DAYS, "--schedule", "gfs:4x2",
                    "--bytes", "768KB", "--tapes", 30,
                    "--tape-capacity", "4MB", "--daily-snapshots"]) == 0
        out = capsys.readouterr().out
        assert "campaign: %d day(s), 2 volume(s)" % self.DAYS in out
        return workdir

    def test_catalog_listing_and_chain(self, campaign, capsys):
        assert run(["catalog", "cat.json", "list"]) == 0
        out = capsys.readouterr().out
        assert out.count("logical") >= self.DAYS
        assert out.count("image") >= self.DAYS
        assert "media:" in out
        assert run(["catalog", "cat.json", "chain", "home",
                    "--day", 4]) == 0
        out = capsys.readouterr().out
        assert "level 0 day 0" in out
        assert "level 1 day 4" in out
        assert "level 2" not in out  # minimal chain skips the level 2s
        assert "load order:" in out
        # chain without a FSID is a usage error.
        assert run(["catalog", "cat.json", "chain"]) == 2

    def test_dumpdates_from_catalog(self, campaign, capsys):
        assert run(["dumpdates", "--catalog", "cat.json"]) == 0
        out = capsys.readouterr().out
        assert "home" in out
        assert "rlse" not in out  # image sets don't feed dumpdates

    def test_restore_pit_matches_source_snapshot(self, campaign, capsys):
        from repro.backup.verify import verify_trees
        from repro.storage.persist import load_volume
        from repro.wafl.filesystem import WaflFilesystem

        for fsid, day in (("home", 3), ("rlse", self.DAYS - 1)):
            out_name = "rest-%s.bin" % fsid
            assert run(["restore-pit", "cat.json", fsid, out_name,
                        "--pool", "pool.med", "--day", day]) == 0
            source = WaflFilesystem.mount(load_volume("%s.vol" % fsid))
            restored = WaflFilesystem.mount(load_volume(out_name))
            assert verify_trees(source.snapshot_view("day.%d" % day),
                                restored) == []

    def test_policy_and_prune_roundtrip(self, campaign, capsys):
        assert run(["policy", "cat.json", "set", "home",
                    "redundancy 1"]) == 0
        assert run(["policy", "cat.json", "set", "rlse", "window 2"]) == 0
        capsys.readouterr()
        assert run(["policy", "cat.json", "list"]) == 0
        out = capsys.readouterr().out
        assert "home:/ -> redundancy 1" in out
        assert "rlse:/ -> window 2" in out
        # One full chain each: redundancy 1 keeps everything, but the
        # image volume's 2-day window retires days 0 and 1... except
        # they anchor day 2's chain, so only truly unneeded sets go.
        assert run(["prune", "cat.json", "--pool", "pool.med"]) == 0
        prune_out = capsys.readouterr().out
        assert "prune:" in prune_out
        # Whatever was retired, every surviving chain still plans.
        assert run(["catalog", "cat.json", "chain", "home"]) == 0
        assert run(["catalog", "cat.json", "chain", "rlse"]) == 0

    def test_policy_rejects_garbage(self, campaign, capsys):
        assert run(["policy", "cat.json", "set", "home",
                    "keep forever"]) == 2
        assert run(["policy", "cat.json", "set"]) == 2


def test_run_campaign_rejects_bad_volume_spec(workdir, capsys):
    assert run(["run-campaign", "cat.json", "--pool", "pool.med",
                "--volume", "home", "--days", 1]) == 2
    assert "NAME=STRATEGY" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Observability flags and the trace subcommand
# ---------------------------------------------------------------------------

def test_dump_with_trace_chrome_and_metrics(workdir, capsys):
    run(["mkfs", "vol.bin"])
    run(["populate", "vol.bin", "--bytes", "1MB", "--seed", 5])
    assert run(["dump", "vol.bin", "t0.tape", "--level", 0,
                "--trace", "t.jsonl", "--trace-chrome", "t.chrome.json",
                "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "dump: simulated elapsed" in out
    assert "Creating snapshot" in out       # the per-phase summary table
    assert "counter   tape.write_bytes" in out  # the metrics text dump
    assert os.path.exists("t.jsonl") and os.path.exists("t.chrome.json")

    # The saved trace validates, summarizes, and exports.
    assert run(["trace", "validate", "t.jsonl"]) == 0
    assert "spans well-formed" in capsys.readouterr().out
    assert run(["trace", "summary", "t.jsonl"]) == 0
    assert "Dumping files" in capsys.readouterr().out
    assert run(["trace", "export", "t.jsonl", "--out", "x.json"]) == 0
    capsys.readouterr()
    doc = json.load(open("x.json"))
    assert any(e["ph"] == "M" for e in doc["traceEvents"])

    # The dump it traced is still a real dump.
    assert run(["restore", "t0.tape", "new.bin", "--mkfs"]) == 0
    assert run(["verify", "new.bin", "t0.tape"]) == 0


def test_metrics_snapshot_file_and_disabled_default(workdir, capsys):
    run(["mkfs", "vol.bin"])
    run(["populate", "vol.bin", "--bytes", "512KB", "--seed", 2])
    assert run(["image-dump", "vol.bin", "i0.tape",
                "--metrics", "m.json"]) == 0
    out = capsys.readouterr().out
    assert "metrics: snapshot -> m.json" in out
    snap = json.load(open("m.json"))
    assert snap["counters"]["tape.write_bytes"] > 0
    assert snap["counters"]["executor.jobs"] == 1

    # Without the flags the plane stays dark: no summary, no spans.
    assert run(["image-restore", "i0.tape", "r.bin"]) == 0
    out = capsys.readouterr().out
    assert "simulated elapsed" not in out
    assert "counter" not in out


def test_run_campaign_with_trace(workdir, capsys):
    assert run(["run-campaign", "cat.json", "--pool", "pool.med",
                "--volume", "home=logical", "--days", 2,
                "--schedule", "gfs:4x2", "--bytes", "256KB",
                "--tapes", 10, "--tape-capacity", "4MB",
                "--trace", "c.jsonl"]) == 0
    capsys.readouterr()
    assert run(["trace", "validate", "c.jsonl"]) == 0
    capsys.readouterr()
    from repro.obs import read_jsonl
    events = read_jsonl("c.jsonl")
    spans = [e for e in events if e.get("cat") == "campaign"]
    assert len(spans) == 2  # one per campaign day
    assert {e["tid"] for e in spans} == {"home"}
    assert all("level" in e["args"] and "day" in e["args"] for e in spans)
