"""SnapMirror-style replication tests (Section 6 future work)."""

import pytest

from repro.errors import BackupError, IncrementalError
from repro.backup import verify_trees
from repro.wafl.fsck import fsck

from tests.conftest import make_fs, make_volume, populate_small_tree
from repro.mirror import MirrorRelationship


def make_pair():
    source = make_fs(name="src")
    populate_small_tree(source)
    target_volume = source.volume.clone_empty()
    return source, target_volume


def test_initialize_copies_everything():
    source, target_volume = make_pair()
    mirror = MirrorRelationship(source, target_volume)
    result = mirror.initialize()
    assert result.kind == "initialize"
    replica = mirror.read_replica()
    assert verify_trees(source, replica, check_mtime=True,
                        ignore=["/"]) == []


def test_update_ships_only_changes():
    source, target_volume = make_pair()
    mirror = MirrorRelationship(source, target_volume)
    first = mirror.initialize()
    source.write_file("/docs/readme.txt", b"edited", 0)
    source.create("/fresh", b"f" * 5000)
    update = mirror.update()
    assert update.kind == "update"
    assert update.blocks < first.blocks
    replica = mirror.read_replica()
    assert replica.read_file("/fresh") == b"f" * 5000
    assert replica.read_file("/docs/readme.txt")[:6] == b"edited"


def test_repeated_updates_converge():
    source, target_volume = make_pair()
    mirror = MirrorRelationship(source, target_volume)
    mirror.initialize()
    for cycle in range(4):
        source.create("/cycle%d" % cycle, bytes([cycle]) * 3000)
        if cycle % 2:
            source.unlink("/cycle%d" % (cycle - 1))
        mirror.update()
    replica = mirror.read_replica()
    diffs = verify_trees(source, replica, check_mtime=True, ignore=["/"])
    assert diffs == []
    assert fsck(replica).clean


def test_source_keeps_only_latest_mirror_snapshot():
    source, target_volume = make_pair()
    mirror = MirrorRelationship(source, target_volume)
    mirror.initialize()
    mirror.update()
    mirror.update()
    mirror_snaps = [s.name for s in source.snapshots()
                    if s.name.startswith("mirror.")]
    assert len(mirror_snaps) == 1
    assert mirror_snaps[0] == mirror.baseline


def test_geometry_mismatch_rejected():
    source = make_fs(name="src")
    wrong = make_volume(ngroups=1, ndata=3, blocks_per_disk=500)
    with pytest.raises(BackupError):
        MirrorRelationship(source, wrong)


def test_double_initialize_rejected():
    source, target_volume = make_pair()
    mirror = MirrorRelationship(source, target_volume)
    mirror.initialize()
    with pytest.raises(BackupError):
        mirror.initialize()


def test_update_before_initialize_rejected():
    source, target_volume = make_pair()
    mirror = MirrorRelationship(source, target_volume)
    with pytest.raises(BackupError):
        mirror.update()


def test_tampered_replica_refuses_update():
    source, target_volume = make_pair()
    mirror = MirrorRelationship(source, target_volume)
    mirror.initialize()
    # Someone mounts the replica read-write and changes it.
    replica = mirror.read_replica()
    replica.create("/rogue", b"should not be here")
    replica.consistency_point()
    source.create("/more", b"m")
    with pytest.raises(IncrementalError):
        mirror.update()


def test_transfer_log(
):
    source, target_volume = make_pair()
    mirror = MirrorRelationship(source, target_volume)
    mirror.initialize()
    source.create("/x", b"1")
    mirror.update()
    kinds = [t.kind for t in mirror.transfers]
    assert kinds == ["initialize", "update"]
    assert all(t.bytes_transferred > 0 for t in mirror.transfers)
