"""Timed mirroring: steady-state updates are cheap in simulated time too."""


from repro.backup.common import drain_engine
from repro.backup.physical.dump import ImageDump
from repro.backup.physical.restore import ImageRestore
from repro.perf import TimedRun
from repro.units import MB
from repro.workload import MutationConfig, WorkloadGenerator, apply_mutations

from tests.conftest import make_drive, make_fs


def test_incremental_transfer_time_tracks_churn():
    """The timed cost of an incremental image transfer is proportional to
    the churn, not the volume size — Section 6's replication economics."""
    fs = make_fs(ngroups=2, ndata=6, blocks_per_disk=2500, name="src")
    tree = WorkloadGenerator(seed=55).populate(fs, 20 * MB)

    full_drive = make_drive("full", capacity=256 * MB)
    run = TimedRun()
    full = run.add_job("full", ImageDump(fs, full_drive,
                                         snapshot_name="m0").run())
    run.run()

    apply_mutations(fs, tree, MutationConfig(seed=56, modify_fraction=0.02,
                                             delete_fraction=0.0,
                                             create_fraction=0.01,
                                             rename_fraction=0.0))
    incr_drive = make_drive("incr", capacity=256 * MB)
    run = TimedRun()
    incr = run.add_job("incr", ImageDump(fs, incr_drive, snapshot_name="m1",
                                         base_snapshot="m0").run())
    run.run()

    # Compare only the block-streaming stages (snapshot stages are fixed).
    full_stream = full.stages["Dumping blocks"].elapsed
    incr_stream = incr.stages["Dumping blocks"].elapsed
    assert incr_stream < full_stream / 2
    assert incr.data.blocks < full.data.blocks / 2


def test_applying_incremental_faster_than_full_restore():
    fs = make_fs(ngroups=2, ndata=6, blocks_per_disk=2500, name="src")
    tree = WorkloadGenerator(seed=57).populate(fs, 20 * MB)
    full_drive = make_drive("f", capacity=256 * MB)
    drain_engine(ImageDump(fs, full_drive, snapshot_name="b0").run())
    apply_mutations(fs, tree, MutationConfig(seed=58, modify_fraction=0.03,
                                             delete_fraction=0.0,
                                             create_fraction=0.0,
                                             rename_fraction=0.0))
    incr_drive = make_drive("i", capacity=256 * MB)
    drain_engine(ImageDump(fs, incr_drive, snapshot_name="b1",
                           base_snapshot="b0").run())

    target = fs.volume.clone_empty()
    run = TimedRun()
    full_restore = run.add_job("rf", ImageRestore(target, full_drive).run())
    run.run()
    run = TimedRun()
    incr_restore = run.add_job("ri", ImageRestore(target, incr_drive).run())
    run.run()
    assert incr_restore.elapsed < full_restore.elapsed / 2
