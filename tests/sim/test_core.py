"""Unit tests for the DES kernel."""

import pytest

from repro.sim import Simulation, SimError


def test_timeout_advances_clock():
    sim = Simulation()

    def proc():
        yield sim.timeout(5.0)
        return "done"

    process = sim.process(proc())
    assert sim.run_process(process) == "done"
    assert sim.now == 5.0


def test_timeouts_fire_in_order():
    sim = Simulation()
    order = []

    def proc(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(proc(3, "c"))
    sim.process(proc(1, "a"))
    sim.process(proc(2, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_equal_time_events_fifo():
    sim = Simulation()
    order = []

    def proc(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        sim.process(proc(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_negative_timeout_rejected():
    sim = Simulation()
    with pytest.raises(SimError):
        sim.timeout(-1)


def test_process_waits_on_process():
    sim = Simulation()

    def child():
        yield sim.timeout(4)
        return 42

    def parent():
        value = yield sim.process(child())
        return value + 1

    assert sim.run_process(sim.process(parent())) == 43
    assert sim.now == 4


def test_process_return_value_none_by_default():
    sim = Simulation()

    def proc():
        yield sim.timeout(1)

    assert sim.run_process(sim.process(proc())) is None


def test_event_succeed_wakes_waiter():
    sim = Simulation()
    gate = sim.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append(value)

    def opener():
        yield sim.timeout(2)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert seen == ["open"]
    assert sim.now == 2


def test_event_fail_raises_in_waiter():
    sim = Simulation()
    gate = sim.event()

    def waiter():
        yield gate

    process = sim.process(waiter())
    gate.fail(ValueError("boom"))
    with pytest.raises(ValueError):
        sim.run_process(process)


def test_event_double_trigger_rejected():
    sim = Simulation()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimError):
        event.succeed(2)


def test_all_of_collects_values():
    sim = Simulation()

    def proc(delay, value):
        yield sim.timeout(delay)
        return value

    children = [sim.process(proc(d, d * 10)) for d in (3, 1, 2)]

    def parent():
        values = yield sim.all_of(children)
        return values

    assert sim.run_process(sim.process(parent())) == [30, 10, 20]


def test_all_of_empty_fires_immediately():
    sim = Simulation()

    def parent():
        values = yield sim.all_of([])
        return values

    assert sim.run_process(sim.process(parent())) == []
    assert sim.now == 0


def test_run_until_stops_clock():
    sim = Simulation()

    def proc():
        yield sim.timeout(100)

    sim.process(proc())
    sim.run(until=10)
    assert sim.now == 10


def test_deadlock_detected():
    sim = Simulation()
    gate = sim.event()  # never triggered

    def waiter():
        yield gate

    process = sim.process(waiter())
    with pytest.raises(SimError, match="deadlock"):
        sim.run_process(process)


def test_yield_non_event_fails_process():
    sim = Simulation()

    def proc():
        yield 42

    process = sim.process(proc())
    with pytest.raises(SimError):
        sim.run_process(process)


def test_interrupt_wakes_sleeper():
    sim = Simulation()
    from repro.sim import Interrupt

    caught = []

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt as interrupt:
            caught.append(interrupt.cause)
        return "ok"

    def interrupter(target):
        yield sim.timeout(5)
        target.interrupt("wake")

    sleeper_proc = sim.process(sleeper())
    sim.process(interrupter(sleeper_proc))
    assert sim.run_process(sleeper_proc) == "ok"
    assert caught == ["wake"]
    assert sim.now == 5


def test_waiting_on_already_processed_event():
    sim = Simulation()
    event = sim.event()
    event.succeed("early")
    sim.run()  # process the event fully

    def late_waiter():
        value = yield event
        return value

    assert sim.run_process(sim.process(late_waiter())) == "early"
