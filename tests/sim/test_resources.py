"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Resource, SimError, Simulation, Store
from repro.sim.resources import PreemptiveClock, hold


def test_resource_serializes_capacity_one():
    sim = Simulation()
    resource = Resource(sim, capacity=1)
    finish = []

    def worker(tag):
        request = yield resource.acquire()
        yield sim.timeout(2)
        resource.release(request)
        finish.append((tag, sim.now))

    sim.process(worker("a"))
    sim.process(worker("b"))
    sim.run()
    assert finish == [("a", 2), ("b", 4)]


def test_resource_parallel_capacity_two():
    sim = Simulation()
    resource = Resource(sim, capacity=2)
    finish = []

    def worker(tag):
        request = yield resource.acquire()
        yield sim.timeout(2)
        resource.release(request)
        finish.append((tag, sim.now))

    for tag in "abc":
        sim.process(worker(tag))
    sim.run()
    assert finish == [("a", 2), ("b", 2), ("c", 4)]


def test_resource_weighted_acquire_blocks_narrow():
    sim = Simulation()
    resource = Resource(sim, capacity=4)
    events = []

    def wide():
        request = yield resource.acquire(4)
        events.append(("wide-start", sim.now))
        yield sim.timeout(5)
        resource.release(request)

    def narrow():
        yield sim.timeout(1)
        request = yield resource.acquire(1)
        events.append(("narrow-start", sim.now))
        resource.release(request)

    sim.process(wide())
    sim.process(narrow())
    sim.run()
    assert events == [("wide-start", 0), ("narrow-start", 5)]


def test_resource_over_capacity_rejected():
    sim = Simulation()
    resource = Resource(sim, capacity=2)
    with pytest.raises(SimError):
        resource.acquire(3)


def test_resource_double_release_rejected():
    sim = Simulation()
    resource = Resource(sim, capacity=1)

    def worker():
        request = yield resource.acquire()
        resource.release(request)
        with pytest.raises(SimError):
            resource.release(request)

    sim.run_process(sim.process(worker()))


def test_resource_utilization_tracked():
    sim = Simulation()
    resource = Resource(sim, capacity=1)

    def worker():
        yield from hold(resource, 4.0)
        yield sim.timeout(4.0)

    sim.run_process(sim.process(worker()))
    assert resource.utilization.utilization(0.0, 8.0) == pytest.approx(0.5)


def test_store_fifo_order():
    sim = Simulation()
    store = Store(sim, capacity=10)
    received = []

    def producer():
        for item in range(3):
            yield store.put(item)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == [0, 1, 2]


def test_store_blocks_producer_when_full():
    sim = Simulation()
    store = Store(sim, capacity=2)
    times = []

    def producer():
        for item in range(4):
            yield store.put(item)
            times.append(sim.now)

    def consumer():
        while True:
            yield sim.timeout(5)
            yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run(until=100)
    # First two fit immediately; the rest wait for consumption.
    assert times[:2] == [0, 0]
    assert times[2] == 5
    assert times[3] == 10


def test_store_blocks_consumer_when_empty():
    sim = Simulation()
    store = Store(sim, capacity=10)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, sim.now))

    def producer():
        yield sim.timeout(7)
        yield store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("late", 7)]


def test_store_weighted_items():
    sim = Simulation()
    store = Store(sim, capacity=100)

    def producer():
        yield store.put("big", weight=70)
        yield store.put("small", weight=40)  # must wait: 70+40 > 100

    def consumer():
        yield sim.timeout(3)
        item = yield store.get()
        assert item == "big"

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert store.level == 40


def test_store_overweight_item_rejected():
    sim = Simulation()
    store = Store(sim, capacity=10)
    with pytest.raises(SimError):
        store.put("x", weight=11)


def test_preemptive_clock_shares_rate():
    clock = PreemptiveClock(rate=100.0)
    assert clock.service_time(50.0) == pytest.approx(0.5)
    assert clock.service_time(50.0, concurrency=2) == pytest.approx(1.0)
