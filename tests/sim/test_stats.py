"""Utilization tracker and interval accumulator tests."""

import pytest

from repro.sim.stats import IntervalAccumulator, UtilizationTracker


class TestUtilizationTracker:
    def test_constant_level(self):
        tracker = UtilizationTracker(capacity=1)
        tracker.record(0.0, 1)
        tracker.record(10.0, 0)
        assert tracker.busy_time(0, 10) == pytest.approx(10.0)
        assert tracker.utilization(0, 10) == pytest.approx(1.0)

    def test_partial_window(self):
        tracker = UtilizationTracker(capacity=1)
        tracker.record(2.0, 1)
        tracker.record(6.0, 0)
        assert tracker.busy_time(0, 10) == pytest.approx(4.0)
        assert tracker.busy_time(3, 5) == pytest.approx(2.0)
        assert tracker.utilization(0, 10) == pytest.approx(0.4)

    def test_stepped_levels(self):
        tracker = UtilizationTracker(capacity=2)
        tracker.record(0.0, 1)
        tracker.record(5.0, 2)
        tracker.record(10.0, 0)
        assert tracker.busy_time(0, 10) == pytest.approx(15.0)
        assert tracker.utilization(0, 10) == pytest.approx(0.75)

    def test_same_time_overwrites(self):
        tracker = UtilizationTracker()
        tracker.record(1.0, 1)
        tracker.record(1.0, 0)
        assert tracker.busy_time(0, 2) == pytest.approx(0.0)

    def test_out_of_order_rejected(self):
        tracker = UtilizationTracker()
        tracker.record(5.0, 1)
        with pytest.raises(ValueError):
            tracker.record(4.0, 0)

    def test_empty_window(self):
        tracker = UtilizationTracker()
        assert tracker.busy_time(5, 5) == 0.0
        assert tracker.utilization(5, 4) == 0.0

    def test_tail_extends_to_window_end(self):
        tracker = UtilizationTracker()
        tracker.record(0.0, 1)
        # No closing record: level persists through the query window.
        assert tracker.busy_time(0, 7) == pytest.approx(7.0)


class TestIntervalAccumulator:
    def test_open_close_duration(self):
        acc = IntervalAccumulator()
        acc.open("phase", 1.0)
        acc.close("phase", 4.0)
        assert acc.duration("phase") == pytest.approx(3.0)

    def test_repeated_intervals_sum(self):
        acc = IntervalAccumulator()
        acc.open("x", 0.0)
        acc.close("x", 1.0)
        acc.open("x", 5.0)
        acc.close("x", 7.0)
        assert acc.duration("x") == pytest.approx(3.0)
        assert acc.span("x") == (0.0, 7.0)

    def test_quantities(self):
        acc = IntervalAccumulator()
        acc.add("x", "bytes", 100)
        acc.add("x", "bytes", 50)
        acc.add("y", "bytes", 7)
        assert acc.total("x", "bytes") == 150
        assert acc.total("y", "bytes") == 7
        assert acc.total("z", "bytes") == 0

    def test_double_open_rejected(self):
        acc = IntervalAccumulator()
        acc.open("x", 0.0)
        with pytest.raises(ValueError):
            acc.open("x", 1.0)

    def test_close_unopened_rejected(self):
        acc = IntervalAccumulator()
        with pytest.raises(ValueError):
            acc.close("x", 1.0)

    def test_span_missing_raises(self):
        acc = IntervalAccumulator()
        with pytest.raises(KeyError):
            acc.span("ghost")

    def test_names_in_order(self):
        acc = IntervalAccumulator()
        for name in ("b", "a", "b"):
            acc.open(name, 0.0)
            acc.close(name, 1.0)
        assert acc.names() == ["b", "a"]
