"""Additional DES kernel edge cases."""

import pytest

from repro.sim import Simulation, SimError
from repro.sim.core import Process


def test_all_of_propagates_failure():
    sim = Simulation()
    good = sim.event()
    bad = sim.event()

    def waiter():
        yield sim.all_of([good, bad])

    process = sim.process(waiter())
    good.succeed(1)
    bad.fail(RuntimeError("child failed"))
    with pytest.raises(RuntimeError):
        sim.run_process(process)


def test_process_requires_generator():
    sim = Simulation()
    with pytest.raises(SimError):
        Process(sim, lambda: None)  # not a generator


def test_interrupt_finished_process_rejected():
    sim = Simulation()

    def quick():
        yield sim.timeout(1)

    process = sim.process(quick())
    sim.run_process(process)
    with pytest.raises(SimError):
        process.interrupt()


def test_unhandled_interrupt_terminates_quietly():
    sim = Simulation()

    def sleeper():
        yield sim.timeout(100)

    process = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(1)
        process.interrupt("stop")

    sim.process(interrupter())
    # run_process returns the moment the process completes: at the
    # interrupt (t=1), not at the abandoned timeout (t=100).
    sim.run_process(process)
    assert sim.now == pytest.approx(1.0)


def test_fail_requires_exception_instance():
    sim = Simulation()
    event = sim.event()
    with pytest.raises(SimError):
        event.fail("not an exception")


def test_run_until_past_is_rejected():
    sim = Simulation()
    sim.timeout(5)
    sim.run()
    with pytest.raises(SimError):
        sim.run(until=1)


def test_process_failure_propagates_to_waiter():
    sim = Simulation()

    def broken():
        yield sim.timeout(1)
        raise ValueError("inner")

    def outer():
        yield sim.process(broken())

    process = sim.process(outer())
    with pytest.raises(ValueError):
        sim.run_process(process)


def test_value_passed_through_timeout():
    sim = Simulation()

    def proc():
        value = yield sim.timeout(1, value="ping")
        return value

    assert sim.run_process(sim.process(proc())) == "ping"


def test_event_ok_before_trigger_raises():
    sim = Simulation()
    event = sim.event()
    with pytest.raises(SimError):
        _ = event.ok


def test_nested_processes_three_deep():
    sim = Simulation()

    def level3():
        yield sim.timeout(1)
        return 3

    def level2():
        value = yield sim.process(level3())
        return value + 2

    def level1():
        value = yield sim.process(level2())
        return value + 1

    assert sim.run_process(sim.process(level1())) == 6
