"""Workload generator, aging, and mutation tests."""

import random

import pytest

from repro.units import MB
from repro.wafl.fsck import fsck
from repro.workload import (
    AgingConfig,
    FileSizeDistribution,
    MutationConfig,
    TreeShape,
    WorkloadGenerator,
    age_filesystem,
    apply_mutations,
    fragmentation_report,
)
from repro.workload.distributions import deterministic_bytes

from tests.conftest import make_fs


class TestDistributions:
    def test_sizes_bounded(self):
        dist = FileSizeDistribution(max_bytes=1 * MB)
        rng = random.Random(1)
        for size in dist.sample_many(rng, 500):
            assert 0 <= size <= 1 * MB

    def test_sampling_is_deterministic_per_seed(self):
        dist = FileSizeDistribution()
        a = dist.sample_many(random.Random(7), 100)
        b = dist.sample_many(random.Random(7), 100)
        assert a == b

    def test_heavy_tail_present(self):
        dist = FileSizeDistribution()
        sizes = dist.sample_many(random.Random(3), 3000)
        big = [s for s in sizes if s >= dist.tail_min]
        assert big  # the Pareto tail fires
        # But most files are small.
        assert sorted(sizes)[len(sizes) // 2] < 64 * 1024

    def test_invalid_tail_probability(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            FileSizeDistribution(tail_probability=1.5)

    def test_deterministic_bytes(self):
        assert deterministic_bytes(5, 100) == deterministic_bytes(5, 100)
        assert deterministic_bytes(5, 100) != deterministic_bytes(6, 100)
        assert len(deterministic_bytes(1, 12345)) == 12345
        assert deterministic_bytes(1, 0) == b""


class TestGenerator:
    def test_populate_reaches_target(self):
        fs = make_fs(blocks_per_disk=4000)
        tree = WorkloadGenerator(seed=11).populate(fs, 8 * MB)
        assert tree.total_bytes >= 8 * MB
        assert len(tree.files) > 10
        assert len(tree.directories) >= 1
        assert fsck(fs).clean

    def test_populate_is_deterministic(self):
        fs_a = make_fs(name="a", blocks_per_disk=4000)
        fs_b = make_fs(name="b", blocks_per_disk=4000)
        tree_a = WorkloadGenerator(seed=5).populate(fs_a, 4 * MB)
        tree_b = WorkloadGenerator(seed=5).populate(fs_b, 4 * MB)
        assert tree_a.files == tree_b.files
        assert fs_a.read_file(tree_a.files[0]) == fs_b.read_file(tree_b.files[0])

    def test_populate_creates_special_objects(self):
        fs = make_fs(blocks_per_disk=4000)
        shape = TreeShape(symlink_fraction=0.2, hardlink_fraction=0.1,
                          acl_fraction=0.3)
        tree = WorkloadGenerator(shape=shape, seed=13).populate(fs, 3 * MB)
        assert tree.symlinks or tree.hardlinks

    def test_populate_many_interleaves(self):
        fs = make_fs(blocks_per_disk=6000)
        generator = WorkloadGenerator(seed=17)
        fs.mkdir("/q0")
        fs.mkdir("/q1")
        trees = generator.populate_many(fs, ["/q0", "/q1"], 3 * MB)
        assert len(trees) == 2
        for tree in trees:
            assert tree.total_bytes >= 3 * MB
        assert fsck(fs).clean
        # Interleaving: the two qtrees' physical blocks intermix.
        extents0 = [fs.file_extents(fs.namei(p))[0][1]
                    for p in trees[0].files[:20] if fs.file_extents(fs.namei(p))]
        extents1 = [fs.file_extents(fs.namei(p))[0][1]
                    for p in trees[1].files[:20] if fs.file_extents(fs.namei(p))]
        assert extents0 and extents1
        assert min(extents1) < max(extents0)


class TestAging:
    def test_aging_fragments_free_space(self):
        fs = make_fs(blocks_per_disk=5000)
        generator = WorkloadGenerator(seed=19)
        tree = generator.populate(fs, 12 * MB)
        before = fragmentation_report(fs)
        age_filesystem(fs, tree, AgingConfig(rounds=3, churn_fraction=0.4))
        after = fragmentation_report(fs)
        # Files shatter into more extents than a freshly written tree.
        assert after["extents_per_file"] > before["extents_per_file"]
        assert fsck(fs).clean

    def test_aging_keeps_tree_in_sync(self):
        fs = make_fs(blocks_per_disk=5000)
        generator = WorkloadGenerator(seed=23)
        tree = generator.populate(fs, 6 * MB)
        age_filesystem(fs, tree, AgingConfig(rounds=2))
        for path in tree.files:
            assert fs.exists(path), path

    def test_aging_respects_space_reserve(self):
        fs = make_fs(blocks_per_disk=2000)
        generator = WorkloadGenerator(seed=29)
        tree = generator.populate(fs, 15 * MB)  # fills most of the volume
        age_filesystem(fs, tree, AgingConfig(rounds=3, churn_fraction=0.5))
        stats = fs.statfs()
        assert stats["free_blocks"] > 0
        assert fsck(fs).clean


class TestMutations:
    def test_mutation_report_is_accurate(self):
        fs = make_fs(blocks_per_disk=5000)
        generator = WorkloadGenerator(seed=31)
        tree = generator.populate(fs, 6 * MB)
        report = apply_mutations(fs, tree, MutationConfig(seed=37))
        for path in report["deleted"]:
            assert not fs.exists(path)
        for path in report["created"]:
            assert fs.exists(path)
        for path in report["renamed"]:
            assert fs.exists(path)
        assert fsck(fs).clean

    def test_mutations_feed_incremental_dump(self):
        from repro.backup import DumpDates, LogicalDump, drain_engine
        from tests.conftest import make_drive

        fs = make_fs(blocks_per_disk=5000)
        generator = WorkloadGenerator(seed=41)
        tree = generator.populate(fs, 4 * MB)
        dumpdates = DumpDates()
        drain_engine(LogicalDump(fs, make_drive("l0"),
                                 dumpdates=dumpdates).run())
        report = apply_mutations(fs, tree, MutationConfig(seed=43))
        changed = len(set(report["modified"])) + len(report["created"]) \
            + len(report["renamed"])
        result = drain_engine(
            LogicalDump(fs, make_drive("l1"), level=1,
                        dumpdates=dumpdates).run()
        )
        assert result.files <= changed + 5
        assert result.files >= max(1, len(report["created"]))
