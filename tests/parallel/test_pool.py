"""TaskPool semantics: deterministic merge, failures, retries, timeouts.

The worker functions live at module top level so they pickle into real
worker processes; each parametrized case runs both the serial in-process
path (``jobs=1``) and the fork-based pool (``jobs=2``), which must agree
on everything except wall-clock.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.parallel import (
    TaskError,
    TaskPool,
    TaskSpec,
    TaskTimeout,
    fork_available,
)

JOBS = [1] + ([2] if fork_available() else [])


def square(value):
    return value * value


def slow_square(value, delay):
    time.sleep(delay)
    return value * value


def boom(message):
    raise ValueError(message)


def sleep_forever():
    time.sleep(60)
    return "never"


def fail_until_marker(marker_path):
    """Fail while the marker exists, deleting it — the retry succeeds.

    The marker file carries the state across processes, so the test
    covers parent-driven resubmission, not in-worker looping.
    """
    if os.path.exists(marker_path):
        os.unlink(marker_path)
        raise RuntimeError("first attempt fails")
    return "recovered"


@pytest.mark.parametrize("jobs", JOBS)
def test_results_come_back_in_declaration_order(jobs):
    # Later tasks finish first under the pool (earlier ones sleep), so
    # declaration-order results prove the merge ignores completion order.
    specs = [
        TaskSpec("t%d" % value, slow_square,
                 (value, 0.05 if value < 2 else 0.0))
        for value in range(6)
    ]
    results = TaskPool(jobs).run(specs)
    assert [r.name for r in results] == ["t%d" % v for v in range(6)]
    assert [r.value for r in results] == [v * v for v in range(6)]
    assert all(r.attempts == 1 for r in results)


@pytest.mark.parametrize("jobs", JOBS)
def test_map_values(jobs):
    values = TaskPool(jobs).map_values(
        [TaskSpec("s%d" % v, square, (v,)) for v in (3, 1, 4, 1, 5)]
    )
    assert values == [9, 1, 16, 1, 25]


@pytest.mark.parametrize("jobs", JOBS)
def test_worker_exception_propagates_with_traceback(jobs):
    specs = [
        TaskSpec("good", square, (2,)),
        TaskSpec("bad", boom, ("kaput",), retries=0),
    ]
    with pytest.raises(TaskError) as exc_info:
        TaskPool(jobs).run(specs)
    error = exc_info.value
    assert error.task_name == "bad"
    assert "kaput" in str(error)
    assert "ValueError" in error.worker_traceback
    assert "boom" in error.worker_traceback


@pytest.mark.parametrize("jobs", JOBS)
def test_retry_once_recovers(jobs, tmp_path):
    marker = str(tmp_path / ("fail.%d" % jobs))
    with open(marker, "w"):
        pass
    results = TaskPool(jobs).run(
        [TaskSpec("flaky", fail_until_marker, (marker,))]
    )
    assert results[0].value == "recovered"
    assert results[0].attempts == 2


@pytest.mark.parametrize("jobs", JOBS)
def test_retries_exhausted_raises(jobs, tmp_path):
    with pytest.raises(TaskError) as exc_info:
        TaskPool(jobs).run(
            [TaskSpec("hopeless", boom, ("always",), retries=1)]
        )
    assert "after 2 attempt(s)" in str(exc_info.value)


@pytest.mark.parametrize("jobs", JOBS)
def test_timeout_raises_task_timeout(jobs):
    spec = TaskSpec("wedged", sleep_forever, timeout=0.2, retries=0)
    start = time.monotonic()
    with pytest.raises(TaskTimeout) as exc_info:
        TaskPool(jobs).run([spec])
    assert time.monotonic() - start < 30
    assert exc_info.value.task_name == "wedged"


@pytest.mark.parametrize("jobs", JOBS)
def test_progress_events_stream(jobs):
    events = []
    TaskPool(jobs).run(
        [TaskSpec("p%d" % v, square, (v,)) for v in range(4)],
        progress=events.append,
    )
    assert len(events) == 4
    assert all(event.ok for event in events)
    # "done" counts up monotonically as attempts complete.
    assert sorted(event.done for event in events) == [1, 2, 3, 4]
    assert {event.name for event in events} == {"p0", "p1", "p2", "p3"}


def big_blob(seed):
    """A deterministic payload well above the shared-memory threshold."""
    chunk = bytes((seed * 7 + i) % 256 for i in range(4096))
    return {"seed": seed, "blob": chunk * 384}  # ~1.5 MB


@pytest.mark.parametrize("jobs", JOBS)
def test_large_results_round_trip(jobs):
    """Results above SHM_MIN_BYTES come back intact and leak no segments."""
    shm_dir = "/dev/shm"
    before = set(os.listdir(shm_dir)) if os.path.isdir(shm_dir) else set()
    results = TaskPool(jobs).run(
        [TaskSpec("big%d" % seed, big_blob, (seed,)) for seed in range(3)]
    )
    for seed, result in zip(range(3), results):
        assert result.value == big_blob(seed)
    if os.path.isdir(shm_dir):
        leaked = {
            name for name in os.listdir(shm_dir) if name.startswith("psm_")
        } - before
        assert not leaked


def test_serial_path_never_ships():
    """In-process execution must not detour through shared memory."""
    from repro.parallel.pool import _ShmHandle, _ship_value

    value = big_blob(1)
    assert _ship_value(value) is value
    assert not isinstance(_ship_value(value), _ShmHandle)


def test_empty_spec_list():
    assert TaskPool(1).run([]) == []


def test_bad_jobs_rejected():
    with pytest.raises(Exception):
        TaskPool(0)
