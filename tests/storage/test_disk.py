"""Unit tests for VirtualDisk and DiskModel."""

import pytest

from repro.errors import StorageError
from repro.storage.disk import DEFAULT_BLOCK_SIZE, DiskModel, VirtualDisk


class TestVirtualDisk:
    def test_unwritten_blocks_read_zero(self):
        disk = VirtualDisk(10)
        assert disk.read_block(3) == bytes(DEFAULT_BLOCK_SIZE)

    def test_write_read_roundtrip(self):
        disk = VirtualDisk(10)
        data = b"x" * DEFAULT_BLOCK_SIZE
        disk.write_block(5, data)
        assert disk.read_block(5) == data

    def test_out_of_range_rejected(self):
        disk = VirtualDisk(10)
        with pytest.raises(StorageError):
            disk.read_block(10)
        with pytest.raises(StorageError):
            disk.write_block(-1, bytes(DEFAULT_BLOCK_SIZE))

    def test_short_write_rejected(self):
        disk = VirtualDisk(10)
        with pytest.raises(StorageError):
            disk.write_block(0, b"short")

    def test_zero_write_keeps_store_sparse(self):
        disk = VirtualDisk(10)
        disk.write_block(1, b"a" * DEFAULT_BLOCK_SIZE)
        disk.write_block(1, bytes(DEFAULT_BLOCK_SIZE))
        assert not disk.is_allocated(1)
        assert disk.read_block(1) == bytes(DEFAULT_BLOCK_SIZE)

    def test_fail_block_raises_then_heals(self):
        disk = VirtualDisk(10)
        disk.write_block(2, b"b" * DEFAULT_BLOCK_SIZE)
        disk.fail_block(2)
        with pytest.raises(StorageError):
            disk.read_block(2)
        disk.heal_block(2)
        assert disk.read_block(2) == b"b" * DEFAULT_BLOCK_SIZE

    def test_write_clears_failure(self):
        disk = VirtualDisk(10)
        disk.fail_block(4)
        disk.write_block(4, b"c" * DEFAULT_BLOCK_SIZE)
        assert disk.read_block(4) == b"c" * DEFAULT_BLOCK_SIZE

    def test_counters(self):
        disk = VirtualDisk(10)
        disk.write_block(0, bytes(DEFAULT_BLOCK_SIZE))
        disk.read_block(0)
        disk.read_block(1)
        assert disk.writes == 1
        assert disk.reads == 2

    def test_clone_empty_has_same_geometry(self):
        disk = VirtualDisk(10, name="orig")
        disk.write_block(0, b"z" * DEFAULT_BLOCK_SIZE)
        clone = disk.clone_empty()
        assert clone.nblocks == 10
        assert not clone.is_allocated(0)


class TestCloneFaultIsolation:
    """clone() copies the fault set copy-on-write, like the contents."""

    def test_clone_inherits_existing_faults(self):
        disk = VirtualDisk(10)
        disk.fail_block(3)
        clone = disk.clone()
        with pytest.raises(StorageError):
            clone.read_block(3)

    def test_fault_in_clone_never_leaks_to_parent(self):
        disk = VirtualDisk(10)
        disk.write_block(2, b"p" * DEFAULT_BLOCK_SIZE)
        clone = disk.clone()
        clone.fail_block(2)
        with pytest.raises(StorageError):
            clone.read_block(2)
        assert disk.read_block(2) == b"p" * DEFAULT_BLOCK_SIZE

    def test_fault_in_parent_never_leaks_to_clone(self):
        disk = VirtualDisk(10)
        disk.write_block(2, b"p" * DEFAULT_BLOCK_SIZE)
        clone = disk.clone()
        disk.fail_block(2)
        with pytest.raises(StorageError):
            disk.read_block(2)
        assert clone.read_block(2) == b"p" * DEFAULT_BLOCK_SIZE

    def test_heal_in_clone_keeps_parent_fault(self):
        disk = VirtualDisk(10)
        disk.fail_block(5)
        clone = disk.clone()
        clone.heal_block(5)
        assert clone.read_block(5) == bytes(DEFAULT_BLOCK_SIZE)
        with pytest.raises(StorageError):
            disk.read_block(5)

    def test_overwrite_in_clone_keeps_parent_fault(self):
        # write_block clears a fault on the written side only.
        disk = VirtualDisk(10)
        disk.fail_block(7)
        clone = disk.clone()
        clone.write_block(7, b"c" * DEFAULT_BLOCK_SIZE)
        assert clone.read_block(7) == b"c" * DEFAULT_BLOCK_SIZE
        with pytest.raises(StorageError):
            disk.read_block(7)

    def test_clone_of_clone_isolates_faults_transitively(self):
        disk = VirtualDisk(10)
        first = disk.clone()
        second = first.clone()
        second.fail_block(1)
        with pytest.raises(StorageError):
            second.read_block(1)
        assert first.read_block(1) == bytes(DEFAULT_BLOCK_SIZE)
        assert disk.read_block(1) == bytes(DEFAULT_BLOCK_SIZE)


class TestDiskModel:
    def test_sequential_read_has_no_positioning(self):
        model = DiskModel(ndisks=10)
        first = model.service_time(0, 100)
        second = model.service_time(100, 100)
        # Second request continues the first: transfer time only.
        transfer = 100 * model.block_size / model.stream_rate
        assert second == pytest.approx(transfer)
        assert first > second

    def test_random_read_pays_seek(self):
        model = DiskModel(ndisks=10)
        model.service_time(0, 10)
        jump = model.service_time(50000, 10)
        transfer = 10 * model.block_size / model.stream_rate
        assert jump == pytest.approx(model.seek_time + model.half_rotation + transfer)

    def test_near_forward_hop_cheap(self):
        model = DiskModel(ndisks=10)
        model.service_time(0, 10)
        hop = model.service_time(50, 10)  # 40-block forward gap
        transfer = 10 * model.block_size / model.stream_rate
        assert hop == pytest.approx(model.near_seek_time + transfer)

    def test_backward_read_is_a_full_seek(self):
        model = DiskModel(ndisks=10)
        model.service_time(1000, 10)
        back = model.service_time(900, 10)
        assert back > model.seek_time

    def test_write_stream_continuation_free(self):
        model = DiskModel(ndisks=10)
        model.service_time(0, 64, kind="write")
        cont = model.service_time(64, 64, kind="write")
        transfer = 64 * model.block_size / model.stream_rate
        assert cont == pytest.approx(transfer)

    def test_multiple_write_streams_coexist(self):
        model = DiskModel(ndisks=10)
        model.service_time(0, 64, kind="write")  # stream A
        model.service_time(30000, 64, kind="write")  # stream B (new: seek)
        # Continuing either stream is now free.
        a = model.service_time(64, 64, kind="write")
        b = model.service_time(30064, 64, kind="write")
        transfer = 64 * model.block_size / model.stream_rate
        assert a == pytest.approx(transfer)
        assert b == pytest.approx(transfer)

    def test_zero_length_rejected(self):
        model = DiskModel()
        with pytest.raises(StorageError):
            model.service_time(0, 0)

    def test_busy_accounting(self):
        model = DiskModel(ndisks=10)
        t = model.service_time(0, 100)
        assert model.busy_seconds == pytest.approx(t)
        assert model.bytes_moved == 100 * model.block_size

    def test_reset_position(self):
        model = DiskModel()
        model.service_time(0, 10)
        model.service_time(10, 10, kind="write")
        model.reset_position()
        assert model.last_end is None
        assert model.write_streams == []
