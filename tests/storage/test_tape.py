"""Unit tests for the tape subsystem."""

import pytest

from repro.errors import TapeError
from repro.storage.tape import TapeCartridge, TapeDrive, TapeModel, TapeStacker
from repro.units import KB, MB


def make_drive(tapes=3, capacity=1 * MB):
    return TapeDrive(TapeStacker.with_blank_tapes(tapes, capacity=capacity,
                                                  name="t"))


class TestCartridge:
    def test_append_and_capacity(self):
        cartridge = TapeCartridge(capacity=100)
        cartridge.append(b"x" * 60)
        assert cartridge.used == 60
        assert cartridge.remaining == 40
        with pytest.raises(TapeError):
            cartridge.append(b"y" * 41)

    def test_write_protection(self):
        cartridge = TapeCartridge(capacity=100)
        cartridge.write_protected = True
        with pytest.raises(TapeError):
            cartridge.append(b"z")
        with pytest.raises(TapeError):
            cartridge.erase()


class TestDrive:
    def test_write_read_roundtrip(self):
        drive = make_drive()
        drive.write(b"hello tape world")
        drive.rewind()
        assert drive.read(16) == b"hello tape world"

    def test_write_spans_cartridges(self):
        drive = make_drive(tapes=3, capacity=100)
        payload = bytes(range(250)) * 1  # 250 bytes over 100-byte tapes
        drive.write(payload)
        assert drive.stacker.cartridges[0].used == 100
        assert drive.stacker.cartridges[1].used == 100
        assert drive.stacker.cartridges[2].used == 50
        drive.rewind()
        assert drive.read(250) == payload

    def test_first_load_is_not_a_media_change(self):
        drive = make_drive(tapes=3, capacity=100)
        drive.write(b"a" * 50)
        assert drive.media_changes == 0
        drive.write(b"b" * 100)  # spills onto cartridge 2
        assert drive.media_changes == 1

    def test_out_of_cartridges(self):
        drive = make_drive(tapes=1, capacity=10)
        with pytest.raises(TapeError):
            drive.write(b"x" * 11)

    def test_read_past_end(self):
        drive = make_drive()
        drive.write(b"abc")
        drive.rewind()
        with pytest.raises(TapeError):
            drive.read(4)

    def test_stream_bytes_concatenates(self):
        drive = make_drive(tapes=2, capacity=4)
        drive.write(b"abcdefg")
        assert drive.stream_bytes() == b"abcdefg"
        assert drive.stream_length() == 7

    def test_rewind_allows_reread(self):
        drive = make_drive()
        drive.write(b"12345678")
        drive.rewind()
        assert drive.read(4) == b"1234"
        drive.rewind()
        assert drive.read(8) == b"12345678"


class TestTapeModel:
    def test_streaming_rate(self):
        model = TapeModel(rate=10 * MB, record_gap=0.0)
        assert model.transfer_time(10 * MB) == pytest.approx(1.0)

    def test_record_gaps_charged(self):
        model = TapeModel(rate=10 * MB, record_size=64 * KB, record_gap=0.001)
        t = model.transfer_time(128 * KB)
        assert t == pytest.approx(128 * KB / (10 * MB) + 2 * 0.001)

    def test_media_change_charged(self):
        model = TapeModel(rate=10 * MB, change_time=60.0, record_gap=0.0)
        assert model.transfer_time(0, media_changes=1) >= 60.0

    def test_restart_penalty_on_write_gap(self):
        model = TapeModel(rate=10 * MB, record_gap=0.0,
                          restart_penalty=0.5, restart_idle=0.01)
        model.transfer_time(1 * MB, now=0.0, writing=True)
        # Next write starts long after the previous finished: restart.
        busy = model.transfer_time(1 * MB, now=10.0, writing=True)
        assert busy == pytest.approx(0.1 + 0.5)
        assert model.restarts == 1

    def test_no_restart_when_streaming(self):
        model = TapeModel(rate=10 * MB, record_gap=0.0,
                          restart_penalty=0.5, restart_idle=0.01)
        t0 = model.transfer_time(1 * MB, now=0.0, writing=True)
        model.transfer_time(1 * MB, now=t0, writing=True)
        assert model.restarts == 0

    def test_no_restart_for_reads(self):
        model = TapeModel(rate=10 * MB, record_gap=0.0,
                          restart_penalty=0.5, restart_idle=0.01)
        model.transfer_time(1 * MB, now=0.0, writing=False)
        model.transfer_time(1 * MB, now=100.0, writing=False)
        assert model.restarts == 0

    def test_negative_transfer_rejected(self):
        model = TapeModel()
        with pytest.raises(TapeError):
            model.transfer_time(-1)
