"""Volume and tape container persistence."""

import pytest

from repro.errors import StorageError, TapeError
from repro.storage.persist import (
    load_media,
    load_tape,
    load_volume,
    save_media,
    save_tape,
    save_volume,
)
from repro.storage.tape import TapeCartridge
from repro.units import KB, MB
from repro.wafl.filesystem import WaflFilesystem
from repro.wafl.fsck import fsck

from tests.conftest import make_drive, make_fs, populate_small_tree


def test_volume_roundtrip_bit_identical(tmp_path):
    fs = make_fs(name="orig")
    populate_small_tree(fs)
    fs.consistency_point()
    path = str(tmp_path / "vol.bin")
    save_volume(fs.volume, path)
    loaded = load_volume(path)
    assert loaded.geometry == fs.volume.geometry
    assert loaded.name == "orig"
    for block in range(0, fs.volume.nblocks, 37):
        assert loaded.read_block(block) == fs.volume.read_block(block)
    # Parity travels too: the loaded volume still reconstructs.
    assert loaded.verify_parity()


def test_loaded_volume_mounts(tmp_path):
    fs = make_fs(name="orig")
    populate_small_tree(fs)
    fs.snapshot_create("keeper")
    fs.consistency_point()
    path = str(tmp_path / "vol.bin")
    save_volume(fs.volume, path)
    remounted = WaflFilesystem.mount(load_volume(path))
    assert remounted.read_file("/docs/readme.txt") == \
        fs.read_file("/docs/readme.txt")
    assert [s.name for s in remounted.snapshots()] == ["keeper"]
    assert fsck(remounted).clean


def test_tape_roundtrip(tmp_path):
    drive = make_drive(tapes=3, capacity=1 * MB)
    payload = bytes(range(256)) * 9000  # spans cartridges
    drive.write(payload)
    path = str(tmp_path / "tape.bin")
    save_tape(drive, path)
    loaded = load_tape(path)
    assert loaded.stream_bytes() == payload
    loaded.rewind()
    assert loaded.read(len(payload)) == payload


def test_tape_roundtrip_preserves_capacity(tmp_path):
    drive = make_drive(tapes=2, capacity=1 * MB)
    drive.write(b"abc")
    path = str(tmp_path / "tape.bin")
    save_tape(drive, path)
    loaded = load_tape(path)
    assert loaded.stacker.cartridges[0].capacity == 1 * MB
    assert len(loaded.stacker.cartridges) == 2


def test_bad_magic_rejected(tmp_path):
    path = str(tmp_path / "junk.bin")
    with open(path, "wb") as handle:
        handle.write(b"NOTAMAGIC-------")
    with pytest.raises(StorageError):
        load_volume(path)
    with pytest.raises(StorageError):
        load_tape(path)


def test_truncated_container_rejected(tmp_path):
    fs = make_fs()
    fs.consistency_point()
    path = str(tmp_path / "vol.bin")
    save_volume(fs.volume, path)
    with open(path, "rb") as handle:
        data = handle.read()
    with open(path, "wb") as handle:
        handle.write(data[: len(data) // 2])
    with pytest.raises(StorageError):
        load_volume(path)


def test_tape_roundtrip_partial_last_cartridge(tmp_path):
    """A stream ending mid-cartridge reloads with the partial tail intact."""
    drive = make_drive(tapes=4, capacity=64 * KB)
    payload = bytes(range(256)) * 600  # 150 KB: 2 full carts + a partial
    drive.write(payload)
    path = str(tmp_path / "tape.bin")
    save_tape(drive, path)
    loaded = load_tape(path)
    used = [c.used for c in loaded.stacker.cartridges]
    assert used == [64 * KB, 64 * KB, len(payload) - 128 * KB, 0]
    assert 0 < loaded.stacker.cartridges[2].remaining < 64 * KB
    # Reads cross both cartridge boundaries and stop at the true end.
    loaded.rewind()
    assert loaded.read(len(payload)) == payload
    with pytest.raises(TapeError):
        loaded.read(1)


def test_tape_append_after_reload_matches_unreloaded_drive(tmp_path):
    """Reload-then-append must continue the stream where it left off,
    not skip the partially written cartridge's tail."""
    first = b"A" * (100 * KB)
    second = b"B" * (50 * KB)

    reference = make_drive(tapes=4, capacity=64 * KB)
    reference.write(first)
    reference.write(second)

    drive = make_drive(tapes=4, capacity=64 * KB)
    drive.write(first)
    path = str(tmp_path / "tape.bin")
    save_tape(drive, path)
    resumed = load_tape(path)
    resumed.write(second)

    assert resumed.stream_bytes() == reference.stream_bytes()
    assert ([c.used for c in resumed.stacker.cartridges]
            == [c.used for c in reference.stacker.cartridges])
    resumed.rewind()
    assert resumed.read(len(first) + len(second)) == first + second


def test_tape_append_after_reload_with_exactly_full_cartridge(tmp_path):
    """When the stream ends exactly at a cartridge boundary, appends
    resume on the next blank cartridge."""
    drive = make_drive(tapes=3, capacity=64 * KB)
    drive.write(b"C" * (64 * KB))
    path = str(tmp_path / "tape.bin")
    save_tape(drive, path)
    resumed = load_tape(path)
    resumed.write(b"D" * KB)
    used = [c.used for c in resumed.stacker.cartridges]
    assert used == [64 * KB, KB, 0]


def test_media_roundtrip_keeps_labels(tmp_path):
    cartridges = [TapeCartridge(capacity=32 * KB, label="crt%04d" % i)
                  for i in range(1, 4)]
    cartridges[0].append(b"x" * (32 * KB))  # full
    cartridges[1].append(b"y" * 100)        # partial
    path = str(tmp_path / "pool.med")
    save_media(cartridges, path)
    loaded = load_media(path)
    assert [c.label for c in loaded] == ["crt0001", "crt0002", "crt0003"]
    assert [c.capacity for c in loaded] == [32 * KB] * 3
    assert bytes(loaded[0].data) == b"x" * (32 * KB)
    assert bytes(loaded[1].data) == b"y" * 100
    assert loaded[2].used == 0


def test_media_container_rejects_wrong_magic(tmp_path):
    drive = make_drive(tapes=1, capacity=32 * KB)
    tape_path = str(tmp_path / "tape.bin")
    save_tape(drive, tape_path)
    with pytest.raises(StorageError):
        load_media(tape_path)  # tape container, not a media container
    media_path = str(tmp_path / "pool.med")
    save_media([TapeCartridge(capacity=KB, label="a")], media_path)
    with pytest.raises(StorageError):
        load_tape(media_path)


def test_compression_keeps_containers_small(tmp_path):
    fs = make_fs()
    fs.create("/zeros", bytes(2 * MB))  # compresses brutally
    fs.consistency_point()
    path = str(tmp_path / "vol.bin")
    size = save_volume(fs.volume, path)
    assert size < fs.volume.size_bytes / 10
