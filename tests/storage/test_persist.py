"""Volume and tape container persistence."""

import pytest

from repro.errors import StorageError
from repro.storage.persist import load_tape, load_volume, save_tape, save_volume
from repro.units import MB
from repro.wafl.filesystem import WaflFilesystem
from repro.wafl.fsck import fsck

from tests.conftest import make_drive, make_fs, make_volume, populate_small_tree


def test_volume_roundtrip_bit_identical(tmp_path):
    fs = make_fs(name="orig")
    populate_small_tree(fs)
    fs.consistency_point()
    path = str(tmp_path / "vol.bin")
    save_volume(fs.volume, path)
    loaded = load_volume(path)
    assert loaded.geometry == fs.volume.geometry
    assert loaded.name == "orig"
    for block in range(0, fs.volume.nblocks, 37):
        assert loaded.read_block(block) == fs.volume.read_block(block)
    # Parity travels too: the loaded volume still reconstructs.
    assert loaded.verify_parity()


def test_loaded_volume_mounts(tmp_path):
    fs = make_fs(name="orig")
    populate_small_tree(fs)
    fs.snapshot_create("keeper")
    fs.consistency_point()
    path = str(tmp_path / "vol.bin")
    save_volume(fs.volume, path)
    remounted = WaflFilesystem.mount(load_volume(path))
    assert remounted.read_file("/docs/readme.txt") == \
        fs.read_file("/docs/readme.txt")
    assert [s.name for s in remounted.snapshots()] == ["keeper"]
    assert fsck(remounted).clean


def test_tape_roundtrip(tmp_path):
    drive = make_drive(tapes=3, capacity=1 * MB)
    payload = bytes(range(256)) * 9000  # spans cartridges
    drive.write(payload)
    path = str(tmp_path / "tape.bin")
    save_tape(drive, path)
    loaded = load_tape(path)
    assert loaded.stream_bytes() == payload
    loaded.rewind()
    assert loaded.read(len(payload)) == payload


def test_tape_roundtrip_preserves_capacity(tmp_path):
    drive = make_drive(tapes=2, capacity=1 * MB)
    drive.write(b"abc")
    path = str(tmp_path / "tape.bin")
    save_tape(drive, path)
    loaded = load_tape(path)
    assert loaded.stacker.cartridges[0].capacity == 1 * MB
    assert len(loaded.stacker.cartridges) == 2


def test_bad_magic_rejected(tmp_path):
    path = str(tmp_path / "junk.bin")
    with open(path, "wb") as handle:
        handle.write(b"NOTAMAGIC-------")
    with pytest.raises(StorageError):
        load_volume(path)
    with pytest.raises(StorageError):
        load_tape(path)


def test_truncated_container_rejected(tmp_path):
    fs = make_fs()
    fs.consistency_point()
    path = str(tmp_path / "vol.bin")
    save_volume(fs.volume, path)
    with open(path, "rb") as handle:
        data = handle.read()
    with open(path, "wb") as handle:
        handle.write(data[: len(data) // 2])
    with pytest.raises(StorageError):
        load_volume(path)


def test_compression_keeps_containers_small(tmp_path):
    fs = make_fs()
    fs.create("/zeros", bytes(2 * MB))  # compresses brutally
    fs.consistency_point()
    path = str(tmp_path / "vol.bin")
    size = save_volume(fs.volume, path)
    assert size < fs.volume.size_bytes / 10
