"""Unit tests for RAID layout, groups, and volumes."""

import pytest

from repro.errors import RaidError
from repro.raid.group import RaidGroup
from repro.raid.layout import (
    GroupGeometry,
    geometry_for_capacity,
    locate,
    make_geometry,
)
from repro.raid.volume import RaidVolume
from repro.storage.device import IoRecorder
from repro.units import MB

BS = 4096


class TestLayout:
    def test_make_geometry_counts(self):
        geometry = make_geometry(3, 10, 1000)
        assert geometry.data_blocks == 30000
        assert geometry.size_bytes == 30000 * BS
        assert len(geometry.groups) == 3

    def test_geometry_for_capacity_has_slack(self):
        geometry = geometry_for_capacity(10 * MB, ngroups=2, ndata_disks=4)
        assert geometry.size_bytes >= 10 * MB * 1.25

    def test_locate_stripes_horizontally(self):
        geometry = make_geometry(1, 4, 100)
        loc = locate(geometry, 0)
        assert (loc.disk_index, loc.disk_block) == (0, 0)
        loc = locate(geometry, 5)
        assert (loc.disk_index, loc.disk_block) == (1, 1)

    def test_locate_crosses_groups(self):
        geometry = make_geometry(2, 4, 100)
        loc = locate(geometry, 400)  # first block of group 1
        assert loc.group_index == 1
        assert loc.group_block == 0

    def test_locate_out_of_range(self):
        geometry = make_geometry(1, 4, 100)
        with pytest.raises(RaidError):
            locate(geometry, 400)
        with pytest.raises(RaidError):
            locate(geometry, -1)

    def test_geometry_equality_is_structural(self):
        assert make_geometry(2, 4, 100) == make_geometry(2, 4, 100)
        assert make_geometry(2, 4, 100) != make_geometry(2, 4, 101)

    def test_describe(self):
        text = make_geometry(3, 10, 50).describe()
        assert "3 groups" in text
        assert "33 disks" in text  # 3 * (10 + parity)


class TestRaidGroup:
    def test_parity_maintained_on_writes(self):
        group = RaidGroup(GroupGeometry(4, 50), BS, name="g")
        for block in range(8):
            group.write_block(block, bytes([block]) * BS)
        assert group.verify_parity()

    def test_reconstruction_after_disk_failure(self):
        group = RaidGroup(GroupGeometry(4, 50), BS, name="g")
        data = {block: bytes([block + 1]) * BS for block in range(12)}
        for block, payload in data.items():
            group.write_block(block, payload)
        # Fail every block of one data disk.
        for stripe in range(50):
            group.data_disks[2].fail_block(stripe)
        for block, payload in data.items():
            assert group.read_block(block) == payload
        assert group.reconstructed_reads > 0

    def test_write_to_failed_disk_reconstructs_old(self):
        group = RaidGroup(GroupGeometry(4, 50), BS, name="g")
        group.write_block(2, b"a" * BS)
        group.data_disks[2].fail_block(0)
        group.write_block(2, b"b" * BS)
        assert group.read_block(2) == b"b" * BS

    def test_double_failure_raises(self):
        group = RaidGroup(GroupGeometry(4, 50), BS, name="g")
        group.write_block(0, b"a" * BS)
        group.data_disks[0].fail_block(0)
        group.data_disks[1].fail_block(0)
        with pytest.raises(RaidError):
            group.read_block(0)

    def test_scrub_repairs_corrupted_parity(self):
        group = RaidGroup(GroupGeometry(4, 50), BS, name="g")
        group.write_block(0, b"x" * BS)
        group.parity_disk.write_block(0, b"\xff" * BS)
        assert not group.verify_parity()
        repaired = group.scrub()
        assert repaired >= 1
        assert group.verify_parity()

    def test_out_of_range_block(self):
        group = RaidGroup(GroupGeometry(4, 50), BS, name="g")
        with pytest.raises(RaidError):
            group.read_block(200)


class TestRaidVolume:
    def test_block_roundtrip_across_groups(self):
        volume = RaidVolume(make_geometry(2, 4, 100), name="v")
        volume.write_block(399, b"end-g0" + bytes(BS - 6))
        volume.write_block(400, b"start-g1" + bytes(BS - 8))
        assert volume.read_block(399).startswith(b"end-g0")
        assert volume.read_block(400).startswith(b"start-g1")

    def test_run_roundtrip_spanning_groups(self):
        volume = RaidVolume(make_geometry(2, 4, 100), name="v")
        payload = b"".join(bytes([i % 256]) * BS for i in range(398, 402 + 1))
        # Run 398..402 crosses the group boundary at 400.
        volume.write_run(398, payload)
        assert volume.read_run(398, 5) == payload

    def test_recorder_sees_accesses(self):
        volume = RaidVolume(make_geometry(1, 4, 100), name="v")
        recorder = IoRecorder()
        volume.recorder = recorder
        volume.write_run(10, bytes(3 * BS))
        volume.read_run(10, 3)
        volume.read_block(50)
        accesses = recorder.drain()
        assert ("write", 10, 3) in accesses
        assert ("read", 10, 3) in accesses
        assert ("read", 50, 1) in accesses

    def test_unaligned_run_write_rejected(self):
        volume = RaidVolume(make_geometry(1, 4, 100), name="v")
        with pytest.raises(RaidError):
            volume.write_run(0, b"x" * 100)

    def test_compatible_with(self):
        volume = RaidVolume(make_geometry(2, 4, 100), name="v")
        assert volume.compatible_with(make_geometry(2, 4, 100))
        assert not volume.compatible_with(make_geometry(2, 4, 99))

    def test_clone_empty(self):
        volume = RaidVolume(make_geometry(1, 4, 100), name="v")
        volume.write_block(1, b"q" * BS)
        clone = volume.clone_empty()
        assert clone.geometry == volume.geometry
        assert clone.read_block(1) == bytes(BS)

    def test_parity_survives_mixed_io(self):
        volume = RaidVolume(make_geometry(2, 3, 60), name="v")
        import random

        rng = random.Random(5)
        for _ in range(200):
            block = rng.randrange(volume.nblocks)
            volume.write_block(block, bytes([rng.randrange(256)]) * BS)
        assert volume.verify_parity()

    def test_degraded_volume_still_serves(self):
        volume = RaidVolume(make_geometry(1, 4, 100), name="v")
        volume.write_run(0, b"\x07" * (8 * BS))
        volume.groups[0].data_disks[1].fail_block(0)  # block 1 lives here
        assert volume.read_block(1) == b"\x07" * BS
