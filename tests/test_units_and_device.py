"""Units formatting and I/O-recorder coalescing."""

import pytest

from repro.storage.device import IoRecorder, coalesce_runs
from repro.units import (
    GB,
    KB,
    MB,
    fmt_bytes,
    fmt_duration,
    gb_per_hour,
    mb_per_s,
    pct,
)


class TestUnits:
    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2 * KB) == "2.0 KB"
        assert fmt_bytes(5 * MB) == "5.0 MB"
        assert fmt_bytes(3 * GB) == "3.0 GB"

    def test_fmt_duration(self):
        assert fmt_duration(30) == "30.0 s"
        assert fmt_duration(90) == "1.5 min"
        assert fmt_duration(7200) == "2.00 h"

    def test_rates(self):
        assert mb_per_s(10 * MB, 2.0) == pytest.approx(5.0)
        assert gb_per_hour(1 * GB, 3600.0) == pytest.approx(1.0)
        assert mb_per_s(100, 0) == 0.0
        assert gb_per_hour(100, 0) == 0.0

    def test_pct(self):
        assert pct(0.25) == "25%"
        assert pct(1.0) == "100%"


class TestCoalesce:
    def test_adjacent_reads_merge(self):
        runs = coalesce_runs([("read", 10, 1), ("read", 11, 2),
                              ("read", 13, 1)])
        assert runs == [("read", 10, 4)]

    def test_gap_breaks_run(self):
        runs = coalesce_runs([("read", 10, 1), ("read", 20, 1)])
        assert runs == [("read", 10, 1), ("read", 20, 1)]

    def test_kind_change_breaks_run(self):
        runs = coalesce_runs([("read", 10, 1), ("write", 11, 1)])
        assert len(runs) == 2

    def test_backward_does_not_merge(self):
        runs = coalesce_runs([("read", 10, 2), ("read", 9, 1)])
        assert len(runs) == 2

    def test_empty(self):
        assert coalesce_runs([]) == []


class TestIoRecorder:
    def test_drain_coalesces_and_clears(self):
        recorder = IoRecorder()
        recorder.on_read(5, 1)
        recorder.on_read(6, 1)
        recorder.on_write(100, 4)
        assert recorder.drain() == [("read", 5, 2), ("write", 100, 4)]
        assert recorder.drain() == []

    def test_totals_accumulate(self):
        recorder = IoRecorder()
        recorder.on_read(0, 3)
        recorder.on_write(9, 2)
        recorder.drain()
        recorder.on_read(50, 1)
        assert recorder.total_read_blocks == 4
        assert recorder.total_written_blocks == 2

    def test_discard(self):
        recorder = IoRecorder()
        recorder.on_read(1, 1)
        recorder.discard()
        assert recorder.drain() == []
