"""Sticky tenant affinity and the worker-resident cache: determinism.

Three runs of the same 4-tenant, 2-drive fleet — parallel with a live
mid-run cache invalidation, serial with the same invalidation, and a
parallel run restarted cold halfway (fresh service, residents gone,
epochs back to zero) — must leave byte-identical artifacts.  Affinity
itself must be deterministic, persisted, and sticky across days.
"""

from __future__ import annotations

import filecmp
import json
import os

import pytest

from repro.fleet import FleetService, FleetSpec, TenantSpec, load_state

DAYS = 4
INVALIDATED = "beta"

COMPARED_FILES = [
    "events.jsonl",
    "state.json",
    "tenants/alfa/catalog.json",
    "tenants/beta/catalog.json",
    "tenants/gila/catalog.json",
    "tenants/dune/catalog.json",
    "tenants/alfa/catalog.json.journal",
    "tenants/beta/catalog.json.journal",
    "tenants/gila/catalog.json.journal",
    "tenants/dune/catalog.json.journal",
    "tenants/alfa/media.bin",
    "tenants/beta/media.bin",
    "tenants/gila/media.bin",
    "tenants/dune/media.bin",
]


def make_spec():
    names = ["alfa", "beta", "gila", "dune"]
    strategies = ["logical", "image", "logical", "image"]
    return FleetSpec(
        tenants=[
            TenantSpec(name, lane="daily", strategy=strategy,
                       schedule="gfs:4x2", retention="redundancy 2",
                       data_bytes=200_000 + 25_000 * index,
                       seed=50 + index, cartridges=8,
                       cartridge_capacity=2_000_000, blocks_per_disk=900)
            for index, (name, strategy) in enumerate(zip(names, strategies))
        ],
        drives=2, seed=171717)


def run_with_midrun_invalidation(root, jobs):
    """Half the days, a live epoch bump, the other half, then finalize.

    ``run_day`` keeps the pool (and therefore the worker-resident
    volumes) alive across the invalidation, so the parallel run really
    exercises sync-home + epoch bump + reship; ``run_days(0)`` is the
    shutdown path — residents pulled home, state saved.
    """
    FleetService.init_fleet(str(root), make_spec())
    service = FleetService(str(root), jobs=jobs)
    for _ in range(DAYS // 2):
        service.run_day()
    service.invalidate_tenant(INVALIDATED)
    for _ in range(DAYS // 2):
        service.run_day()
    service.run_days(0)
    return service


def run_with_cold_restart(root, jobs):
    """Same days, but a full service restart (cold caches) halfway."""
    FleetService.init_fleet(str(root), make_spec())
    FleetService(str(root), jobs=jobs).run_days(DAYS // 2)
    service = FleetService(str(root), jobs=jobs)
    service.run_days(DAYS - DAYS // 2)
    return service


@pytest.fixture(scope="module")
def fleet_trio(tmp_path_factory):
    roots = {
        "parallel": tmp_path_factory.mktemp("aff_parallel"),
        "serial": tmp_path_factory.mktemp("aff_serial"),
        "cold": tmp_path_factory.mktemp("aff_cold"),
    }
    services = {
        "parallel": run_with_midrun_invalidation(roots["parallel"], jobs=2),
        "serial": run_with_midrun_invalidation(roots["serial"], jobs=1),
        "cold": run_with_cold_restart(roots["cold"], jobs=2),
    }
    return roots, services


class TestDeterminism:
    @pytest.mark.parametrize("variant", ["serial", "cold"])
    @pytest.mark.parametrize("rel", COMPARED_FILES)
    def test_byte_identical_to_parallel(self, fleet_trio, variant, rel):
        roots, _ = fleet_trio
        assert filecmp.cmp(os.path.join(str(roots["parallel"]), rel),
                           os.path.join(str(roots[variant]), rel),
                           shallow=False), "%s differs (%s)" % (rel, variant)

    def test_epoch_bumped_by_invalidation(self, fleet_trio):
        _, services = fleet_trio
        for variant in ("parallel", "serial"):
            service = services[variant]
            assert service.tenants[INVALIDATED].epoch == 1
            others = [t.epoch for name, t in service.tenants.items()
                      if name != INVALIDATED]
            assert others == [0, 0, 0]


class TestStickiness:
    def test_affinity_covers_all_tenants_and_lanes(self, fleet_trio):
        roots, services = fleet_trio
        affinity = services["parallel"].scheduler.affinity
        assert sorted(affinity) == ["alfa", "beta", "dune", "gila"]
        # Two drive lanes, four tenants: both lanes carry two tenants.
        lanes = sorted(affinity.values())
        assert lanes == [0, 0, 1, 1]
        assert load_state(str(roots["parallel"]))["affinity"] == affinity

    def test_affinity_identical_across_variants(self, fleet_trio):
        _, services = fleet_trio
        reference = services["parallel"].scheduler.affinity
        assert services["serial"].scheduler.affinity == reference
        assert services["cold"].scheduler.affinity == reference

    def test_assignment_happens_once_then_sticks(self, fleet_trio):
        roots, _ = fleet_trio
        with open(os.path.join(str(roots["parallel"]),
                               "events.jsonl")) as handle:
            events = [json.loads(line) for line in handle]
        affinity_events = [e for e in events if e["event"] == "affinity"]
        # One assignment per tenant, all on day 0 — the mid-run epoch
        # bump invalidates the *cache*, never the placement.
        assert len(affinity_events) == 4
        assert {e["day"] for e in affinity_events} == {0}
        # Dumps keep running on the assigned lane every day after.
        finishes = [e for e in events
                    if e["event"] == "finish" and e["kind"] == "dump"]
        assert len(finishes) == 4 * DAYS
