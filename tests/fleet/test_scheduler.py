"""The fleet scheduler's admission mechanics, in isolation.

These tests drive :class:`FleetScheduler` with hand-built jobs — no file
systems, no tapes — to pin the invariants the service relies on:
priority lanes, deficit-round-robin fairness, one-job-per-tenant
batches, drive reservation, and the determinism of the event log.
"""

from __future__ import annotations

import pytest

from repro.fleet import DriveTable, FleetScheduler, Job
from repro.fleet.tenant import FleetError


def make_scheduler(drives=2, quantum=1):
    return FleetScheduler(DriveTable(drives), quantum=quantum)


def submit(scheduler, tenant, lane="daily", kind="dump", weight=1,
           day=0):
    job = Job("J%05d" % len(scheduler.events), tenant, kind, lane, day,
              scheduler.tick, payload={"weight": weight})
    scheduler.submit(job)
    return job


def finish_batch(scheduler, batch, **outcome):
    scheduler.advance_tick()
    for job in batch:
        scheduler.complete(job, **outcome)


class TestDriveTable:
    def test_lowest_free_index_first(self):
        table = DriveTable(3)
        assert table.reserve("a") == 0
        assert table.reserve("b") == 1
        table.release(0, "a")
        assert table.reserve("c") == 0

    def test_release_checks_holder(self):
        table = DriveTable(1)
        table.reserve("a")
        with pytest.raises(FleetError):
            table.release(0, "b")

    def test_busy_ticks_accrue_only_while_held(self):
        table = DriveTable(2)
        table.reserve("a")
        table.tick()
        table.tick()
        table.release(0, "a")
        table.tick()
        assert table.busy_ticks == [2, 0]


class TestLanes:
    def test_interactive_preempts_daily_and_background(self):
        scheduler = make_scheduler(drives=1)
        submit(scheduler, "t1", lane="background")
        submit(scheduler, "t2", lane="daily")
        submit(scheduler, "t3", lane="interactive")
        batch = scheduler.admit()
        assert [job.tenant for job in batch] == ["t3"]
        finish_batch(scheduler, batch)
        assert [job.tenant for job in scheduler.admit()] == ["t2"]

    def test_lower_lane_fills_leftover_drives(self):
        scheduler = make_scheduler(drives=2)
        submit(scheduler, "t1", lane="interactive")
        submit(scheduler, "t2", lane="background")
        batch = scheduler.admit()
        assert [(job.tenant, job.lane) for job in batch] == [
            ("t1", "interactive"), ("t2", "background")]


class TestFairness:
    def test_round_robin_rotates_across_batches(self):
        scheduler = make_scheduler(drives=1)
        for _ in range(2):
            submit(scheduler, "a")
            submit(scheduler, "b")
        order = []
        while scheduler.queue_depth():
            batch = scheduler.admit()
            order.extend(job.tenant for job in batch)
            finish_batch(scheduler, batch)
        # Strict alternation: no tenant is served twice while the other
        # still has queued work.
        assert order == ["a", "b", "a", "b"]

    def test_one_job_per_tenant_per_batch(self):
        scheduler = make_scheduler(drives=4)
        submit(scheduler, "a")
        submit(scheduler, "a")
        submit(scheduler, "b")
        batch = scheduler.admit()
        assert sorted(job.tenant for job in batch) == ["a", "b"]
        finish_batch(scheduler, batch)
        assert [job.tenant for job in scheduler.admit()] == ["a"]

    def test_batch_bounded_by_drives(self):
        scheduler = make_scheduler(drives=2)
        for name in ("a", "b", "c"):
            submit(scheduler, name)
        assert len(scheduler.admit()) == 2

    def test_max_jobs_caps_batch(self):
        scheduler = make_scheduler(drives=4)
        for name in ("a", "b", "c"):
            submit(scheduler, name)
        assert len(scheduler.admit(max_jobs=1)) == 1

    def test_weighted_tenant_gets_more_turns(self):
        # One drive, tenant "big" queues with weight 2: over enough
        # batches it should be served about twice as often as "small".
        scheduler = make_scheduler(drives=1, quantum=1)
        for _ in range(8):
            submit(scheduler, "big", weight=2)
        for _ in range(8):
            submit(scheduler, "small", weight=1)
        served = []
        for _ in range(9):
            batch = scheduler.admit()
            served.extend(job.tenant for job in batch)
            finish_batch(scheduler, batch)
        assert served.count("big") >= served.count("small")


class TestDeterminism:
    def run_sequence(self):
        scheduler = make_scheduler(drives=2)
        log = []
        submit(scheduler, "a", lane="daily")
        submit(scheduler, "b", lane="daily")
        submit(scheduler, "c", lane="background")
        submit(scheduler, "a", lane="interactive", kind="restore")
        while scheduler.queue_depth():
            batch = scheduler.admit()
            log.append([(job.job_id, job.drive) for job in batch])
            finish_batch(scheduler, batch, status="ok")
        return log, scheduler.events

    def test_identical_runs_produce_identical_logs(self):
        first_log, first_events = self.run_sequence()
        second_log, second_events = self.run_sequence()
        assert first_log == second_log
        assert first_events == second_events

    def test_event_log_records_waits_and_drives(self):
        _log, events = self.run_sequence()
        starts = [e for e in events if e["event"] == "start"]
        assert all("drive" in e and "wait_ticks" in e for e in starts)
        finishes = [e for e in events if e["event"] == "finish"]
        assert len(finishes) == 4
        assert all(e["status"] == "ok" for e in finishes)

    def test_wait_ticks_measure_queueing(self):
        scheduler = make_scheduler(drives=1)
        first = submit(scheduler, "a")
        second = submit(scheduler, "b")
        batch = scheduler.admit()
        finish_batch(scheduler, batch)
        batch = scheduler.admit()
        finish_batch(scheduler, batch)
        assert first.wait_ticks == 0
        assert second.wait_ticks == 1

    def test_utilization_fraction(self):
        scheduler = make_scheduler(drives=2)
        submit(scheduler, "a")
        batch = scheduler.admit()
        finish_batch(scheduler, batch)
        assert scheduler.utilization() == [1.0, 0.0]


class TestValidation:
    def test_unknown_lane_refused(self):
        with pytest.raises(FleetError):
            Job("J1", "t", "dump", "express", 0, 0)

    def test_unknown_kind_refused(self):
        with pytest.raises(FleetError):
            Job("J1", "t", "defrag", "daily", 0, 0)

    def test_complete_requires_running(self):
        scheduler = make_scheduler()
        job = submit(scheduler, "a")
        with pytest.raises(FleetError):
            scheduler.complete(job)
