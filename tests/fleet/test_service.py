"""The fleet service end to end: determinism, persistence, ad-hoc jobs.

A module-scoped helper initialises a small 3-tenant, 2-drive fleet and
runs it four simulated days twice — once serial, once with ``jobs=2`` —
so the determinism tests can compare the two roots byte for byte.
"""

from __future__ import annotations

import filecmp
import json
import os

import pytest

from repro.fleet import (
    FleetService,
    FleetSpec,
    TenantSpec,
    load_state,
    set_paused,
    submit_job,
)
from repro.fleet.tenant import FleetError

DAYS = 4

COMPARED_FILES = [
    "events.jsonl",
    "state.json",
    "tenants/acme/catalog.json",
    "tenants/bolt/catalog.json",
    "tenants/corp/catalog.json",
    "tenants/acme/catalog.json.journal",
    "tenants/bolt/catalog.json.journal",
    "tenants/corp/catalog.json.journal",
    "tenants/acme/media.bin",
    "tenants/bolt/media.bin",
    "tenants/corp/media.bin",
]


def make_spec():
    return FleetSpec(
        tenants=[
            TenantSpec("acme", lane="daily", strategy="logical",
                       schedule="gfs:4x2", retention="redundancy 2",
                       data_bytes=400_000, seed=11, cartridges=8,
                       cartridge_capacity=2_000_000, blocks_per_disk=900),
            TenantSpec("bolt", lane="daily", strategy="image",
                       schedule="hanoi:3", retention="redundancy 2",
                       data_bytes=350_000, seed=22, cartridges=8,
                       cartridge_capacity=2_000_000, blocks_per_disk=900),
            TenantSpec("corp", lane="background", strategy="logical",
                       schedule="gfs:4x2", retention="window 10 days",
                       data_bytes=300_000, seed=33, cartridges=8,
                       cartridge_capacity=2_000_000, blocks_per_disk=900),
        ],
        drives=2, seed=424242)


def run_fleet(root, jobs):
    FleetService.init_fleet(str(root), make_spec())
    service = FleetService(str(root), jobs=jobs)
    totals = service.run_days(DAYS)
    return service, totals


@pytest.fixture(scope="module")
def fleet_pair(tmp_path_factory):
    serial_root = tmp_path_factory.mktemp("fleet_serial")
    parallel_root = tmp_path_factory.mktemp("fleet_parallel")
    serial = run_fleet(serial_root, jobs=1)
    parallel = run_fleet(parallel_root, jobs=2)
    return (serial_root, serial), (parallel_root, parallel)


class TestDeterminism:
    def test_serial_and_parallel_totals_match(self, fleet_pair):
        (_, (_, serial_totals)), (_, (_, parallel_totals)) = fleet_pair
        assert serial_totals == parallel_totals
        assert serial_totals["jobs"] == 3 * DAYS

    @pytest.mark.parametrize("rel", COMPARED_FILES)
    def test_artifact_byte_identical(self, fleet_pair, rel):
        (serial_root, _), (parallel_root, _) = fleet_pair
        assert filecmp.cmp(os.path.join(str(serial_root), rel),
                           os.path.join(str(parallel_root), rel),
                           shallow=False), "%s differs" % rel

    def test_event_log_is_wellformed(self, fleet_pair):
        (serial_root, _), _ = fleet_pair
        with open(os.path.join(str(serial_root), "events.jsonl")) as handle:
            events = [json.loads(line) for line in handle]
        assert events, "event log is empty"
        kinds = {event["event"] for event in events}
        assert kinds == {"submit", "start", "affinity", "finish"}
        starts = {e["job"] for e in events if e["event"] == "start"}
        finishes = {e["job"] for e in events if e["event"] == "finish"}
        assert starts == finishes
        ticks = [event["tick"] for event in events]
        assert ticks == sorted(ticks)

    def test_drive_contention_shows_in_waits(self, fleet_pair):
        # 3 tenants, 2 drives: every day one dump waits a tick.
        (serial_root, (service, _)), _ = fleet_pair
        waits = service.scheduler._completed_waits
        assert any(wait > 0 for wait in waits)
        assert service.scheduler.utilization()[0] == 1.0


class TestPersistence:
    def test_catalogs_accumulate_across_service_instances(self, tmp_path):
        root = str(tmp_path / "fleet")
        FleetService.init_fleet(root, make_spec())
        FleetService(root).run_days(2)
        # A brand-new service instance resumes from day 2, same tick.
        service = FleetService(root)
        assert service.state["day"] == 2
        service.run_days(1)
        state = load_state(root)
        assert state["day"] == 3
        tenant = service.tenants["acme"]
        days = sorted(s.day for s in tenant.catalog.sets.values())
        assert days == [0, 1, 2]

    def test_reinit_refused(self, tmp_path):
        root = str(tmp_path / "fleet")
        FleetService.init_fleet(root, make_spec())
        with pytest.raises(FleetError):
            FleetService.init_fleet(root, make_spec())


class TestAdHocJobs:
    @pytest.fixture()
    def fresh_root(self, tmp_path):
        root = str(tmp_path / "fleet")
        FleetService.init_fleet(root, make_spec())
        FleetService(root).run_days(1)
        return root

    def test_submitted_dump_runs_next_day(self, fresh_root):
        submit_job(fresh_root, "acme", kind="dump", lane="interactive")
        service = FleetService(fresh_root)
        totals = service.run_days(1)
        assert totals["jobs"] == 4  # 3 scheduled + 1 ad-hoc
        recent = load_state(fresh_root)["recent"]
        interactive = [r for r in recent if r["lane"] == "interactive"]
        assert len(interactive) == 1
        assert interactive[0]["tenant"] == "acme"
        # Interactive admission preempts the daily lane.
        assert interactive[0]["wait_ticks"] == 0

    def test_submitted_restore_replays_chain(self, fresh_root):
        submit_job(fresh_root, "bolt", kind="restore", lane="interactive")
        FleetService(fresh_root).run_days(1)
        recent = load_state(fresh_root)["recent"]
        restores = [r for r in recent if r["kind"] == "restore"]
        assert len(restores) == 1
        outcome = restores[0]["outcome"]
        assert outcome["status"] == "ok"
        assert outcome["sets"] >= 1
        assert outcome["nodes"] > 1

    def test_submit_unknown_tenant_refused(self, fresh_root):
        with pytest.raises(FleetError):
            submit_job(fresh_root, "nobody")

    def test_paused_tenant_skips_scheduled_dump(self, fresh_root):
        set_paused(fresh_root, "corp", True)
        FleetService(fresh_root).run_days(1)
        recent = load_state(fresh_root)["recent"]
        day1 = [r for r in recent if r["day"] == 1]
        assert sorted(r["tenant"] for r in day1) == ["acme", "bolt"]
        set_paused(fresh_root, "corp", False)
        FleetService(fresh_root).run_days(1)
        recent = load_state(fresh_root)["recent"]
        day2 = [r for r in recent if r["day"] == 2]
        assert sorted(r["tenant"] for r in day2) == ["acme", "bolt", "corp"]


class TestRetention:
    def test_prune_retires_old_chains(self, tmp_path):
        root = str(tmp_path / "fleet")
        spec = FleetSpec(
            tenants=[TenantSpec("solo", lane="daily", strategy="logical",
                                schedule="gfs:2x2", retention="redundancy 1",
                                data_bytes=300_000, seed=5, cartridges=10,
                                cartridge_capacity=2_000_000,
                                blocks_per_disk=900)],
            drives=1, seed=77)
        FleetService.init_fleet(root, spec)
        totals = FleetService(root).run_days(6)
        assert totals["retired"] > 0
        service = FleetService(root)
        live = [s for s in service.tenants["solo"].catalog.sets.values()
                if s.status == "ok"]
        assert live  # the newest chain always survives
