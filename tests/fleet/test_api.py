"""The status document, its schema validator, and the REST endpoint."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.fleet import (
    FleetService,
    FleetSpec,
    TenantSpec,
    load_state,
    make_server,
    status_document,
    validate_status,
)
from repro.fleet.api import load_status_schema
from repro.fleet.tenant import FleetError


def make_spec():
    return FleetSpec(
        tenants=[
            TenantSpec("acme", lane="daily", strategy="logical",
                       schedule="gfs:4x2", retention="redundancy 2",
                       data_bytes=300_000, seed=3, cartridges=6,
                       cartridge_capacity=2_000_000, blocks_per_disk=900),
            TenantSpec("bolt", lane="background", strategy="image",
                       schedule="hanoi:3", retention="redundancy 2",
                       data_bytes=250_000, seed=4, cartridges=6,
                       cartridge_capacity=2_000_000, blocks_per_disk=900),
        ],
        drives=2, seed=99)


@pytest.fixture(scope="module")
def fleet_root(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("fleet_api"))
    FleetService.init_fleet(root, make_spec())
    FleetService(root).run_days(2)
    return root


class TestStatusDocument:
    def test_validates_against_committed_schema(self, fleet_root):
        document = status_document(fleet_root)
        validate_status(document)  # raises on violation

    def test_reflects_fleet_state(self, fleet_root):
        document = status_document(fleet_root)
        assert document["fleet"]["day"] == 2
        assert document["fleet"]["drive_count"] == 2
        names = [t["name"] for t in document["tenants"]]
        assert names == ["acme", "bolt"]
        for summary in document["tenants"]:
            assert summary["live_sets"] >= 1
            assert summary["bytes_to_tape"] > 0
            assert summary["paused"] is False
        assert len(document["jobs"]["recent"]) == 4  # 2 tenants x 2 days

    def test_document_is_json_serialisable(self, fleet_root):
        document = status_document(fleet_root)
        assert json.loads(json.dumps(document)) == document


class TestValidator:
    def test_missing_required_key(self, fleet_root):
        document = status_document(fleet_root)
        del document["drives"]
        with pytest.raises(FleetError, match="missing required key"):
            validate_status(document)

    def test_unexpected_key_rejected(self, fleet_root):
        document = status_document(fleet_root)
        document["surprise"] = 1
        with pytest.raises(FleetError, match="unexpected key"):
            validate_status(document)

    def test_wrong_type_rejected(self, fleet_root):
        document = status_document(fleet_root)
        document["fleet"]["day"] = "two"
        with pytest.raises(FleetError, match="expected integer"):
            validate_status(document)

    def test_enum_violation_rejected(self, fleet_root):
        document = status_document(fleet_root)
        document["tenants"][0]["lane"] = "express"
        with pytest.raises(FleetError, match="not in enum"):
            validate_status(document)

    def test_boolean_is_not_an_integer(self):
        schema = {"type": "integer"}
        with pytest.raises(FleetError):
            validate_status(True, schema)

    def test_schema_file_is_wellformed(self):
        schema = load_status_schema()
        assert schema["type"] == "object"
        assert set(schema["required"]) == {"fleet", "tenants", "drives",
                                           "jobs", "chaos"}


@pytest.fixture(scope="module")
def api_server(fleet_root):
    server = make_server(fleet_root, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield "http://%s:%d" % (host, port)
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def http_get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read().decode())


def http_post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read().decode())


class TestHttpApi:
    def test_get_status(self, api_server):
        status, document = http_get(api_server + "/status")
        assert status == 200
        validate_status(document)

    def test_get_single_tenant(self, api_server):
        status, summary = http_get(api_server + "/tenants/acme")
        assert status == 200
        assert summary["name"] == "acme"

    def test_get_unknown_tenant_404(self, api_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_get(api_server + "/tenants/ghost")
        assert excinfo.value.code == 404

    def test_post_job_queues_pending(self, api_server, fleet_root):
        status, reply = http_post(api_server + "/jobs",
                                  {"tenant": "acme", "kind": "restore",
                                   "lane": "interactive"})
        assert status == 202
        assert reply["queued"]["tenant"] == "acme"
        pending = load_state(fleet_root)["pending"]
        assert {"tenant": "acme", "kind": "restore",
                "lane": "interactive", "day": None} in pending

    def test_post_job_unknown_tenant_400(self, api_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            http_post(api_server + "/jobs", {"tenant": "ghost"})
        assert excinfo.value.code == 400

    def test_pause_resume_roundtrip(self, api_server, fleet_root):
        status, reply = http_post(api_server + "/tenants/bolt/pause", {})
        assert status == 200
        assert reply["paused"] == ["bolt"]
        _status, document = http_get(api_server + "/status")
        bolt = [t for t in document["tenants"] if t["name"] == "bolt"][0]
        assert bolt["paused"] is True
        _status, reply = http_post(api_server + "/tenants/bolt/resume", {})
        assert reply["paused"] == []
