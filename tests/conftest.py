"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.nvram.log import NvramLog
from repro.raid.layout import make_geometry
from repro.raid.volume import RaidVolume
from repro.storage.tape import TapeDrive, TapeStacker
from repro.units import MB
from repro.wafl.filesystem import WaflFilesystem


def make_volume(ngroups=2, ndata=4, blocks_per_disk=2500, name="test"):
    """A small RAID volume (default ~78 MB of data blocks)."""
    return RaidVolume(make_geometry(ngroups, ndata, blocks_per_disk), name=name)


def make_fs(ngroups=2, ndata=4, blocks_per_disk=2500, name="test",
            nvram=False, cache_blocks=4096):
    volume = make_volume(ngroups, ndata, blocks_per_disk, name)
    log = NvramLog(capacity=4 * MB) if nvram else None
    fs = WaflFilesystem.format(volume, nvram=log, cache_blocks=cache_blocks)
    return fs


def make_drive(name="tape", tapes=8, capacity=256 * MB):
    return TapeDrive(TapeStacker.with_blank_tapes(tapes, capacity=capacity,
                                                  name=name))


@pytest.fixture
def volume():
    return make_volume()


@pytest.fixture
def fs():
    return make_fs()


@pytest.fixture
def fs_with_nvram():
    return make_fs(nvram=True)


@pytest.fixture
def drive():
    return make_drive()


def populate_small_tree(fs, prefix=""):
    """A tiny mixed tree exercising every file-system feature."""
    fs.mkdir(prefix + "/docs")
    fs.mkdir(prefix + "/src")
    fs.mkdir(prefix + "/src/deep")
    fs.create(prefix + "/docs/readme.txt", b"hello backup world\n" * 40)
    fs.create(prefix + "/src/main.c", bytes(range(256)) * 64)
    fs.create(prefix + "/src/deep/data.bin", b"\xab" * 50000)
    fs.create(prefix + "/empty")
    fs.symlink(prefix + "/docs/link", prefix + "/src/main.c")
    fs.link(prefix + "/src/main.c", prefix + "/src/main-hard.c")
    fs.set_acl(prefix + "/src/main.c", b"ACL\x01\x02payload")
    fs.set_attrs(prefix + "/docs/readme.txt", dos_name=b"README~1.TXT"[:12],
                 dos_bits=0x21, dos_time=123456789)
    # A sparse file with a real hole.
    fs.create(prefix + "/sparse")
    fs.write_file(prefix + "/sparse", b"head", 0)
    fs.write_file(prefix + "/sparse", b"tail", 12 * 4096)
    fs.consistency_point()
