"""Cost model and hardware profile tests (the calibration contract)."""

import pytest

from repro.perf.costs import CostModel, HardwareProfile, f630_profile
from repro.units import MB


class TestCostModel:
    def test_paper_cpu_ratios_encoded(self):
        """The calibration must preserve Table 3's CPU relationships."""
        costs = CostModel()
        # "Logical dump consumes 5 times the CPU resources of its
        # physical counterpart" (per block moved).
        assert costs.dump_data_block / costs.image_dump_block > 3.5
        # "Logical restore consumes more than 3 times the CPU that
        # physical restore does."
        logical_restore = costs.restore_data_block + costs.restore_nvram_block
        assert logical_restore / costs.image_restore_block > 3.0

    def test_snapshot_stage_constants(self):
        costs = CostModel()
        assert costs.snapshot_create_seconds == pytest.approx(30.0)
        assert costs.snapshot_delete_seconds == pytest.approx(35.0)
        assert costs.snapshot_create_cpu == pytest.approx(0.5)

    def test_costs_are_mutable_for_ablations(self):
        costs = CostModel()
        costs.restore_nvram_block = 0.0
        assert costs.restore_nvram_block == 0.0


class TestHardwareProfile:
    def test_default_matches_f630(self):
        profile = f630_profile()
        assert profile.cpu_count == 1
        # DLT-7000-class streaming rate.
        assert 8 * MB < profile.tape_rate < 11 * MB

    def test_disk_model_for_group(self):
        profile = HardwareProfile()
        model = profile.disk_model_for_group(10, 4096)
        assert model.ndisks == 10
        assert model.stream_rate == pytest.approx(10 * profile.per_disk_stream)

    def test_disk_models_for_volume(self):
        from tests.conftest import make_volume

        profile = HardwareProfile()
        volume = make_volume(ngroups=3, ndata=4)
        models = profile.disk_models_for_volume(volume)
        assert len(models) == 3
        assert all(m.ndisks == 4 for m in models)

    def test_tape_model_carries_parameters(self):
        profile = HardwareProfile(tape_rate=5 * MB, tape_change_time=30.0)
        model = profile.tape_model()
        assert model.rate == 5 * MB
        assert model.change_time == 30.0

    def test_single_drive_throughput_band(self):
        """The effective single-drive rate must sit in the paper's band
        (8.4-9.1 MB/s effective for streaming image dump)."""
        profile = f630_profile()
        model = profile.tape_model()
        nbytes = 64 * MB
        seconds = model.transfer_time(nbytes)
        effective = nbytes / MB / seconds
        assert 8.2 < effective < 9.6
