"""Op coalescing: merged streams must time *exactly* like the originals.

The executor merges adjacent timing-equivalent ops before replay
(single-job runs only).  These tests pin the safety rules of
``coalesce_ops`` and — the golden property — that a coalesced replay
produces bit-identical elapsed/CPU/byte accounting to an uncoalesced one.
"""

import pytest

from repro.perf import TimedRun
from repro.perf.executor import coalesce_ops
from repro.perf.ops import (
    CpuOp,
    DiskReadOp,
    DiskWriteOp,
    PhaseBegin,
    PhaseEnd,
    ReadBarrier,
    SleepOp,
    TapeReadOp,
    TapeWriteOp,
)

from tests.conftest import make_drive, make_volume

RECORD = 60 * 1024  # profile tape record size


def mixed_dump_ops(volume, drive):
    """A dump-shaped stream with every mergeable and unmergeable case."""
    ops = [PhaseBegin("data")]
    block = 0
    for _ in range(10):
        # Two contiguous wide reads (merge), one gap (no merge).
        ops.append(DiskReadOp(volume, block, 16, stage="data"))
        ops.append(DiskReadOp(volume, block + 16, 16, stage="data"))
        ops.append(CpuOp(0.004, stage="data", side="disk"))
        ops.append(CpuOp(0.002, stage="data", side="disk"))
        ops.append(TapeWriteOp(drive, 32 * 4096, 0, stage="data"))
        block += 64
    # Prefetch section: prefetched reads and the barrier never merge,
    # and they fence serial-read merging while in flight.
    for index in range(6):
        ops.append(DiskReadOp(volume, 8000 + index * 16, 16, stage="data",
                              prefetch=True))
    ops.append(ReadBarrier(6, stage="data"))
    ops.append(DiskReadOp(volume, 9000, 16, stage="data"))
    ops.append(DiskReadOp(volume, 9016, 16, stage="data"))
    ops.append(SleepOp(0.5, stage="data"))
    ops.append(SleepOp(0.25, stage="data"))
    ops.append(PhaseEnd("data"))
    return ops


def mixed_restore_ops(volume, drive):
    """A restore-shaped stream: tape reads merge, disk sinks never do."""
    drive.write(b"x" * (40 * RECORD))
    drive.rewind()
    ops = [PhaseBegin("fill")]
    for index in range(10):
        ops.append(TapeReadOp(drive, 2 * RECORD, 0, stage="fill"))
        ops.append(TapeReadOp(drive, RECORD, 0, stage="fill"))
        ops.append(DiskWriteOp(volume, index * 48, 48, stage="fill"))
        ops.append(CpuOp(0.003, stage="fill", side="disk"))
    ops.append(PhaseEnd("fill"))
    return ops


def replay(ops, coalesce):
    run = TimedRun()
    run.coalesce = coalesce
    run.add_ops("job", list(ops))
    return run.run()["job"]


# Merging sums durations once (a+b) where the unmerged replay accumulates
# them separately ((now+a)+b): mathematically equal, but float addition is
# not associative, so clocks may differ by an ulp.  1e-12 relative is far
# below anything the tables print and far above accumulated ulp noise.
EXACT = dict(rel=1e-12, abs=1e-15)


def assert_identical_accounting(baseline, coalesced):
    assert coalesced.elapsed == pytest.approx(baseline.elapsed, **EXACT)
    assert coalesced.cpu_seconds == pytest.approx(baseline.cpu_seconds, **EXACT)
    assert coalesced.disk_bytes == baseline.disk_bytes
    assert coalesced.tape_bytes == baseline.tape_bytes
    assert set(coalesced.stages) == set(baseline.stages)
    for name, stage in baseline.stages.items():
        other = coalesced.stages[name]
        assert other.elapsed == pytest.approx(stage.elapsed, **EXACT)
        assert other.cpu_seconds == pytest.approx(stage.cpu_seconds, **EXACT)
        assert other.disk_bytes == stage.disk_bytes
        assert other.tape_bytes == stage.tape_bytes


def test_dump_coalescing_is_timing_identical():
    volume = make_volume(ngroups=2, ndata=4, blocks_per_disk=5000)
    drive = make_drive()
    ops = mixed_dump_ops(volume, drive)
    baseline = replay(ops, coalesce=False)
    coalesced = replay(ops, coalesce=True)
    assert_identical_accounting(baseline, coalesced)
    merged = coalesce_ops(ops)
    assert len(merged) < len(ops)


def test_restore_coalescing_is_timing_identical():
    volume = make_volume(ngroups=2, ndata=4, blocks_per_disk=5000)
    ops = mixed_restore_ops(volume, make_drive("base"))
    baseline = replay(ops, coalesce=False)
    # Fresh drive with identical content: replay order differs, and tape
    # position is part of the op stream's meaning.
    ops2 = mixed_restore_ops(make_volume(ngroups=2, ndata=4,
                                         blocks_per_disk=5000),
                             make_drive("coal"))
    coalesced = replay(ops2, coalesce=True)
    assert_identical_accounting(baseline, coalesced)
    merged = coalesce_ops(ops, is_restore=True, tape_record_size=RECORD)
    assert len(merged) < len(ops)


# -- unit rules --------------------------------------------------------------


def test_contiguous_wide_reads_merge():
    volume = make_volume()
    ops = [DiskReadOp(volume, 0, 8, stage="x"),
           DiskReadOp(volume, 8, 8, stage="x")]
    merged = coalesce_ops(ops)
    assert len(merged) == 1
    assert merged[0].start_block == 0 and merged[0].nblocks == 16
    # Originals are never mutated.
    assert ops[0].nblocks == 8


def test_noncontiguous_reads_do_not_merge():
    volume = make_volume()
    ops = [DiskReadOp(volume, 0, 8, stage="x"),
           DiskReadOp(volume, 9, 8, stage="x")]
    assert len(coalesce_ops(ops)) == 2


def test_narrow_reads_do_not_merge():
    volume = make_volume(ngroups=1, ndata=8, blocks_per_disk=2500)
    # 4 blocks < 8 data disks: narrow, charged differently — must not merge.
    ops = [DiskReadOp(volume, 0, 4, stage="x"),
           DiskReadOp(volume, 4, 4, stage="x")]
    assert len(coalesce_ops(ops)) == 2


def test_inflight_prefetch_fences_read_merging():
    volume = make_volume()
    ops = [
        DiskReadOp(volume, 100, 8, stage="x", prefetch=True),
        DiskReadOp(volume, 0, 8, stage="x"),
        DiskReadOp(volume, 8, 8, stage="x"),
    ]
    # One prefetch still in flight: the serial reads must not merge.
    assert len(coalesce_ops(ops)) == 3
    # After a barrier drains it, they may.
    fenced = [ops[0], ReadBarrier(1, stage="x"), ops[1], ops[2]]
    assert len(coalesce_ops(fenced)) == 3  # prefetch + barrier + merged read


def test_cpu_merges_in_dump_but_not_restore():
    ops = [CpuOp(0.1, stage="x", side="disk"), CpuOp(0.2, stage="x", side="disk")]
    merged = coalesce_ops(ops)
    assert len(merged) == 1 and merged[0].seconds == pytest.approx(0.3)
    assert len(coalesce_ops(ops, is_restore=True)) == 2


def test_tape_reads_merge_only_on_record_boundary():
    drive = make_drive()
    aligned = [TapeReadOp(drive, 2 * RECORD, 0, stage="x"),
               TapeReadOp(drive, RECORD, 0, stage="x")]
    merged = coalesce_ops(aligned, is_restore=True, tape_record_size=RECORD)
    assert len(merged) == 1 and merged[0].nbytes == 3 * RECORD
    ragged = [TapeReadOp(drive, RECORD + 1, 0, stage="x"),
              TapeReadOp(drive, RECORD, 0, stage="x")]
    assert len(coalesce_ops(ragged, is_restore=True,
                            tape_record_size=RECORD)) == 2


def test_sink_ops_never_merge():
    volume = make_volume()
    drive = make_drive()
    dump_sinks = [TapeWriteOp(drive, 1024, 0, stage="x"),
                  TapeWriteOp(drive, 1024, 0, stage="x")]
    assert len(coalesce_ops(dump_sinks)) == 2
    restore_sinks = [DiskWriteOp(volume, 0, 8, stage="x"),
                     DiskWriteOp(volume, 8, 8, stage="x")]
    assert len(coalesce_ops(restore_sinks, is_restore=True,
                            tape_record_size=RECORD)) == 2


def test_multi_job_runs_skip_coalescing():
    volume = make_volume()
    run = TimedRun()
    ops = [DiskReadOp(volume, 0, 8, stage="x"),
           DiskReadOp(volume, 8, 8, stage="x")]
    run.add_ops("a", list(ops))
    run.add_ops("b", [CpuOp(0.1, stage="y")])
    run.run()
    assert len(run._jobs[0].ops) == 2  # untouched: another job could interleave
