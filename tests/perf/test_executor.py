"""Timed executor tests: pipelines, contention, stage accounting."""

import pytest

from repro.perf import TimedRun
from repro.perf.costs import HardwareProfile
from repro.perf.ops import (
    CpuOp,
    DiskReadOp,
    DiskWriteOp,
    PhaseBegin,
    PhaseEnd,
    ReadBarrier,
    SleepOp,
    TapeReadOp,
    TapeWriteOp,
)

from tests.conftest import make_drive, make_volume


def dump_ops(volume, drive, chunks=50, blocks=256, stage="x"):
    ops = [PhaseBegin(stage)]
    for index in range(chunks):
        ops.append(DiskReadOp(volume, index * blocks, blocks, stage=stage))
        ops.append(TapeWriteOp(drive, blocks * 4096, 0, stage=stage))
    ops.append(PhaseEnd(stage))
    return ops


def test_dump_pipeline_is_tape_bound():
    volume = make_volume()
    drive = make_drive()
    run = TimedRun()
    run.add_ops("job", dump_ops(volume, drive))
    result = run.run()["job"]
    total = 50 * 256 * 4096
    tape_seconds = total / run.profile.tape_rate
    # Disk (sequential ~60 MB/s) overlaps tape (~9.3 MB/s): elapsed ≈ tape.
    assert result.elapsed == pytest.approx(tape_seconds, rel=0.15)


def test_cpu_bound_pipeline():
    volume = make_volume()
    drive = make_drive()
    ops = [PhaseBegin("x")]
    for index in range(20):
        ops.append(DiskReadOp(volume, index * 256, 256, stage="x"))
        ops.append(CpuOp(1.0, stage="x", side="disk"))
        ops.append(TapeWriteOp(drive, 256 * 4096, 0, stage="x"))
    ops.append(PhaseEnd("x"))
    run = TimedRun()
    run.add_ops("job", ops)
    result = run.run()["job"]
    assert result.elapsed >= 20.0  # gated by 20 s of CPU
    stage = result.stages["x"]
    assert stage.cpu_utilization() > 0.8


def test_concurrent_jobs_share_cpu():
    run = TimedRun()
    ops_a = [CpuOp(5.0, stage="a")]
    ops_b = [CpuOp(5.0, stage="b")]
    run.add_ops("a", ops_a)
    run.add_ops("b", ops_b)
    results = run.run()
    end = max(results["a"].end, results["b"].end)
    assert end == pytest.approx(10.0)  # one CPU serializes them


def test_jobs_on_separate_tapes_overlap():
    volume = make_volume()
    run = TimedRun()
    run.add_ops("a", dump_ops(volume, make_drive("t1"), chunks=20))
    run.add_ops("b", dump_ops(volume, make_drive("t2"), chunks=20))
    results = run.run()
    total = 20 * 256 * 4096
    tape_seconds = total / run.profile.tape_rate
    end = max(results["a"].end, results["b"].end)
    # Far less than strictly serial (disk is shared but fast).
    assert end < 2 * tape_seconds * 0.8


def test_restore_direction_sinks_to_disk():
    volume = make_volume()
    drive = make_drive()
    drive.write(b"x" * (20 * 256 * 4096 + 1024))
    drive.rewind()
    ops = [PhaseBegin("r")]
    for index in range(20):
        ops.append(TapeReadOp(drive, 256 * 4096, 0, stage="r"))
        ops.append(DiskWriteOp(volume, index * 256, 256, stage="r"))
    ops.append(PhaseEnd("r"))
    run = TimedRun()
    run.add_ops("restore", ops)
    result = run.run()["restore"]
    total = 20 * 256 * 4096
    tape_seconds = total / run.profile.tape_rate
    assert result.elapsed == pytest.approx(tape_seconds, rel=0.2)
    assert result.disk_bytes == total
    assert result.tape_bytes == total


def test_prefetch_overlaps_reads():
    volume = make_volume(ngroups=3, ndata=10, blocks_per_disk=4000)
    # Scattered single-extent reads across 3 groups, prefetched.
    serial = TimedRun()
    ops = []
    for index in range(90):
        block = (index % 3) * 10000 + (index * 517) % 9000
        ops.append(DiskReadOp(volume, block, 8, stage="x"))
    serial.add_ops("serial", list(ops))
    serial_elapsed = serial.run()["serial"].elapsed

    prefetched = TimedRun()
    pops = []
    for index, op in enumerate(ops):
        pops.append(DiskReadOp(op.volume, op.start_block, op.nblocks,
                               stage="x", prefetch=True))
    pops.append(ReadBarrier(len(pops), stage="x"))
    prefetched.add_ops("prefetch", pops)
    prefetch_elapsed = prefetched.run()["prefetch"].elapsed
    assert prefetch_elapsed < serial_elapsed * 0.7


def test_read_barrier_orders_completion():
    volume = make_volume()
    run = TimedRun()
    ops = [
        DiskReadOp(volume, 0, 1, stage="x", prefetch=True),
        ReadBarrier(1, stage="x"),
        CpuOp(0.001, stage="x"),
    ]
    run.add_ops("job", ops)
    result = run.run()["job"]
    assert result.elapsed > 0


def test_stage_accounting():
    volume = make_volume()
    drive = make_drive()
    ops = [PhaseBegin("one")]
    ops.append(CpuOp(2.0, stage="one"))
    ops.append(PhaseEnd("one"))
    ops.append(PhaseBegin("two"))
    ops.append(SleepOp(3.0, stage="two"))
    ops.append(PhaseEnd("two"))
    run = TimedRun()
    run.add_ops("job", ops)
    result = run.run()["job"]
    assert result.stages["one"].elapsed == pytest.approx(2.0)
    assert result.stages["one"].cpu_utilization() == pytest.approx(1.0)
    assert result.stages["two"].elapsed == pytest.approx(3.0)
    assert result.stages["two"].cpu_utilization() == 0.0


def test_sleep_does_not_hold_cpu():
    run = TimedRun()
    run.add_ops("sleeper", [SleepOp(5.0, stage="s")])
    run.add_ops("worker", [CpuOp(1.0, stage="w")])
    results = run.run()
    assert results["worker"].end == pytest.approx(1.0)


def test_media_change_charged():
    volume = make_volume()
    drive = make_drive()
    run = TimedRun()
    run.add_ops("job", [TapeWriteOp(drive, 1024, 1, stage="x")])
    result = run.run()["job"]
    assert result.elapsed >= run.profile.tape_change_time


def test_start_at_offsets_job():
    run = TimedRun()
    run.add_ops("late", [CpuOp(1.0, stage="x")], start_at=5.0)
    result = run.run()["late"]
    assert result.start == pytest.approx(5.0)
    assert result.end == pytest.approx(6.0)


def test_disk_run_spanning_groups():
    volume = make_volume(ngroups=2, ndata=4, blocks_per_disk=100)
    run = TimedRun()
    # 400 is the group boundary; the run covers both groups.
    run.add_ops("job", [DiskReadOp(volume, 390, 20, stage="x")])
    result = run.run()["job"]
    assert result.disk_bytes == 20 * 4096
    assert len(run._disk_models) == 2


def test_narrow_reads_overlap_within_group():
    volume = make_volume(ngroups=1, ndata=10, blocks_per_disk=5000)
    run = TimedRun()
    # Two jobs issuing 1-block (narrow) reads at scattered addresses.
    ops_a = [DiskReadOp(volume, (i * 997) % 40000, 1, stage="x")
             for i in range(50)]
    ops_b = [DiskReadOp(volume, (i * 991 + 13) % 40000, 1, stage="x")
             for i in range(50)]
    run.add_ops("a", ops_a)
    run.add_ops("b", ops_b)
    results = run.run()
    end = max(results["a"].end, results["b"].end)
    solo = TimedRun()
    solo.add_ops("a", list(ops_a))
    solo_end = solo.run()["a"].end
    # Two narrow-read jobs nearly overlap (10 spindles available).
    assert end < solo_end * 1.5


def test_read_barrier_count_exceeds_issued_prefetches():
    volume = make_volume()
    run = TimedRun()
    ops = [
        DiskReadOp(volume, 0, 8, stage="x", prefetch=True),
        DiskReadOp(volume, 8, 8, stage="x", prefetch=True),
        # Engine over-counts: the barrier waits for what is in flight and
        # must not deadlock waiting for reads that were never issued.
        ReadBarrier(5, stage="x"),
        CpuOp(0.001, stage="x"),
    ]
    run.add_ops("job", ops)
    result = run.run()["job"]
    assert result.disk_bytes == 16 * 4096
    assert result.elapsed > 0


def test_prefetch_window_of_one_serializes():
    volume = make_volume(ngroups=3, ndata=10, blocks_per_disk=4000)
    ops = []
    for index in range(30):
        block = (index % 3) * 10000 + (index * 517) % 9000
        ops.append(DiskReadOp(volume, block, 8, stage="x", prefetch=True))
    ops.append(ReadBarrier(len(ops), stage="x"))

    narrow = TimedRun(HardwareProfile(dump_readahead=1))
    narrow.add_ops("job", list(ops))
    narrow_elapsed = narrow.run()["job"].elapsed

    # dump_readahead=0 clamps to a window of 1: identical schedule.
    clamped = TimedRun(HardwareProfile(dump_readahead=0))
    clamped.add_ops("job", list(ops))
    assert clamped.run()["job"].elapsed == narrow_elapsed

    wide = TimedRun(HardwareProfile(dump_readahead=8))
    wide.add_ops("job", list(ops))
    assert wide.run()["job"].elapsed < narrow_elapsed


def test_sink_op_larger_than_pipeline_buffer():
    volume = make_volume()
    drive = make_drive()
    run = TimedRun()
    big = run._buffer_bytes * 2  # twice the whole pipeline buffer
    ops = [
        DiskReadOp(volume, 0, 16, stage="x"),
        TapeWriteOp(drive, big, 0, stage="x"),
        TapeWriteOp(drive, 1024, 0, stage="x"),
    ]
    run.add_ops("job", ops)
    result = run.run()["job"]
    # The oversized op occupies the buffer exclusively but still flows.
    assert result.tape_bytes == big + 1024
    assert result.elapsed >= big / run.profile.tape_rate
