"""Wall-clock regression gate against the committed baseline.

``BENCH_wallclock.json`` records calibration-normalized timings from the
machine that produced it; the gate re-runs the smoke harness and fails if
any shared benchmark got substantially slower.  The default tolerance is
deliberately loose (interpreter and hardware noise dwarf small changes);
CI tightens it via ``WALLCLOCK_TOLERANCE``.
"""

import json
import os

import pytest

from repro.bench import wallclock


def test_calibration_is_positive():
    assert wallclock.calibrate(repeats=1) > 0


def test_check_regression_flags_slowdown():
    baseline = {
        "calibration_seconds": 1.0,
        "benchmarks": {"micro.x": {"seconds": 1.0}},
    }
    same = {"calibration_seconds": 1.0,
            "benchmarks": {"micro.x": {"seconds": 1.1}}}
    slow = {"calibration_seconds": 1.0,
            "benchmarks": {"micro.x": {"seconds": 2.0}}}
    # A twice-as-fast machine is not a regression even at 1.5x the seconds.
    fast_machine = {"calibration_seconds": 2.0,
                    "benchmarks": {"micro.x": {"seconds": 1.5}}}
    assert wallclock.check_regression(same, baseline, tolerance=0.2) == []
    assert len(wallclock.check_regression(slow, baseline, tolerance=0.2)) == 1
    assert wallclock.check_regression(fast_machine, baseline,
                                      tolerance=0.2) == []


def test_fleet_speedup_is_calibration_normalized():
    baseline = {
        "calibration_seconds": 0.5,
        "benchmarks": {"macro.fleet.smoke": {"rate": 50.0}},
    }
    report = {
        "calibration_seconds": 1.0,  # half-speed machine...
        "benchmarks": {"macro.fleet.hotpath": {"rate": 125.0}},
    }
    # ...so 125 jobs/s here is worth 250 on the baseline machine: 5x.
    assert wallclock.fleet_speedup(report, baseline) == pytest.approx(5.0)
    # Either side missing its entry -> no ratio, caller decides.
    assert wallclock.fleet_speedup({"calibration_seconds": 1.0,
                                    "benchmarks": {}}, baseline) is None
    assert wallclock.fleet_speedup(report,
                                   {"calibration_seconds": 0.5,
                                    "benchmarks": {}}) is None


def test_null_observability_overhead_gate():
    """A disabled gate check must cost <= 3% of the cheapest guarded op.

    ``bench_obs_null`` measures both sides within one process, so machine
    speed cancels; take the best of three to shrug off scheduler noise.
    """
    best = min((wallclock.bench_obs_null() for _ in range(3)),
               key=lambda entry: entry["overhead_fraction"])
    assert best["overhead_fraction"] <= 0.03, best


def test_smoke_harness_vs_committed_baseline():
    baseline_path = wallclock.default_baseline_path()
    if not os.path.exists(baseline_path):
        pytest.skip("no committed %s baseline" % wallclock.BASELINE_NAME)
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    current = wallclock.run_harness(mode="smoke")
    tolerance = float(os.environ.get("WALLCLOCK_TOLERANCE", "1.0"))
    failures = wallclock.check_regression(current, baseline,
                                          tolerance=tolerance)
    assert not failures, "\n".join(failures)
