"""Fast shape checks for the ablation machinery (tiny configurations).

The full ablation sweep lives in ``benchmarks/test_ablations.py``; these
tests only exercise the plumbing so a plain ``pytest tests/`` run covers
the module.
"""

import pytest

import repro.bench.ablations as ablations
from repro.bench.report import Table


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setattr(ablations, "ABLATION_SCALE", 24000)


def test_nvram_ablation_shape():
    table = ablations.ablate_nvram_bypass()
    assert isinstance(table, Table)
    through = table.row("through NVRAM fill CPU").measured
    bypassed = table.row("bypassing NVRAM fill CPU").measured
    assert bypassed <= through


def test_readahead_ablation_shape():
    table = ablations.ablate_readahead()
    labels = [row.label for row in table.rows]
    assert any("window=1" in label for label in labels)


def test_cache_ablation_shape():
    table = ablations.ablate_cache_size()
    tiny = table.row("cache=64 blocks cold metadata reads").measured
    big = table.row("cache=16384 blocks cold metadata reads").measured
    assert big <= tiny
