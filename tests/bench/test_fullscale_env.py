"""The full-scale evaluation plane, exercised at a reduced scale.

Three guarantees ride on the COW-clone + fork-shared-environment work:

- the op-decomposed Table 2/3 grid (one clone per op) reproduces the
  sequential ``run_basic`` tables, and is byte-identical serial vs
  parallel and cloned vs rebuilt;
- the environment is built exactly once per run — forked workers inherit
  it and never rebuild (the build-count assertion);
- the pickle-free environment container round-trips losslessly, and
  independently loaded environments produce byte-identical tables.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.configs import (
    EliotConfig,
    build_home_env,
    clear_env_cache,
    env_build_count,
    load_env,
    save_env,
)
from repro.bench.harness import (
    BASIC_OPS,
    basic_from_ops,
    run_basic,
    run_basic_op,
    table2_from_basic,
    table3_from_basic,
)
from repro.bench.report import to_markdown
from repro.parallel import TaskPool, TaskSpec, fork_available

TINY = 16000


def _config():
    return EliotConfig(scale=TINY, aging_rounds=1)


def _tables_markdown(basic, scale):
    return (to_markdown(table2_from_basic(basic, scale)) + "\n"
            + to_markdown(table3_from_basic(basic, scale)))


def _op_task(op):
    env = build_home_env(_config())
    return run_basic_op(env, op)


def _op_task_counting(op):
    before = env_build_count()
    env = build_home_env(_config())
    payload = run_basic_op(env, op)
    payload["worker_builds"] = env_build_count() - before
    return payload


def test_op_grid_matches_sequential_run_basic():
    """The op-decomposed grid reproduces ``run_basic``'s tables.

    Not byte-identical — sequential ops share one environment whose
    buffer-cache history the per-op clones do not inherit mid-run — but
    row for row within a fraction of a percent, with every verification
    row exact.
    """
    env = build_home_env(_config())
    sequential = run_basic(env.clone())
    decomposed = basic_from_ops([run_basic_op(env, op) for op in BASIC_OPS])
    for name in ("table2", "table3"):
        if name == "table2":
            s_table = table2_from_basic(sequential, TINY)
            d_table = table2_from_basic(decomposed, TINY)
        else:
            s_table = table3_from_basic(sequential, TINY)
            d_table = table3_from_basic(decomposed, TINY)
        assert [r.label for r in d_table.rows] == [r.label for r in s_table.rows]
        for s_row, d_row in zip(s_table.rows, d_table.rows):
            assert d_row.unit == s_row.unit
            assert d_row.paper == s_row.paper
            if "verified" in s_row.label:
                assert d_row.measured == s_row.measured == 0
            elif isinstance(s_row.measured, (int, float)) and s_row.measured:
                assert d_row.measured == pytest.approx(s_row.measured,
                                                       rel=0.02)


def test_cloned_env_tables_match_rebuilt_env():
    env = build_home_env(_config())
    from_clones = [run_basic_op(env, op) for op in BASIC_OPS]
    clear_env_cache()
    rebuilt = build_home_env(_config())
    from_rebuild = [run_basic_op(rebuilt, op) for op in BASIC_OPS]
    assert _tables_markdown(basic_from_ops(from_clones), TINY) \
        == _tables_markdown(basic_from_ops(from_rebuild), TINY)


@pytest.mark.skipif(not fork_available(), reason="needs fork")
def test_op_grid_byte_identical_serial_vs_jobs2():
    build_home_env(_config())  # built once in the parent, pre-fork
    specs = [TaskSpec("op-%s" % op, _op_task, (op,)) for op in BASIC_OPS]
    serial = TaskPool(1).map_values(specs)
    parallel = TaskPool(2).map_values(specs)
    assert _tables_markdown(basic_from_ops(parallel), TINY) \
        == _tables_markdown(basic_from_ops(serial), TINY)


@pytest.mark.skipif(not fork_available(), reason="needs fork")
def test_forked_workers_never_rebuild_the_environment():
    build_home_env(_config())
    specs = [TaskSpec("op-%s" % op, _op_task_counting, (op,))
             for op in BASIC_OPS]
    payloads = TaskPool(2).map_values(specs)
    assert sum(p["worker_builds"] for p in payloads) == 0


def test_parent_builds_exactly_once_across_ops():
    clear_env_cache()
    before = env_build_count()
    for op in BASIC_OPS:
        env = build_home_env(_config())
        run_basic_op(env, op)
    assert env_build_count() - before == 1


def test_env_container_roundtrip_is_lossless(tmp_path):
    """save -> load -> save reproduces the container byte for byte, and
    independently loaded environments produce byte-identical tables.

    (A *built* environment's tables may differ in the last digit from a
    mounted one — the builder leaves a warm buffer cache — which is why
    the full-scale runner always measures from a mount.)
    """
    clear_env_cache()
    env = build_home_env(_config())
    path1 = os.fspath(tmp_path / "tiny1.env")
    path2 = os.fspath(tmp_path / "tiny2.env")
    save_env(env, path1)

    clear_env_cache()
    loaded = load_env(path1)
    assert loaded.config.cache_key() == env.config.cache_key()
    assert loaded.qtree_paths == env.qtree_paths
    # The loaded environment registers in the process cache: builders
    # fetch it instead of rebuilding.
    before = env_build_count()
    assert build_home_env(_config()) is loaded
    assert env_build_count() == before
    save_env(loaded, path2)
    with open(path1, "rb") as h1, open(path2, "rb") as h2:
        assert h1.read() == h2.read()

    first = _tables_markdown(
        basic_from_ops([run_basic_op(loaded, op) for op in BASIC_OPS]), TINY)
    clear_env_cache()
    again = load_env(path1)
    second = _tables_markdown(
        basic_from_ops([run_basic_op(again, op) for op in BASIC_OPS]), TINY)
    assert second == first


def test_env_clone_is_independent_of_the_source():
    env = build_home_env(_config())
    clone = env.clone()
    marker = b"clone-independence-probe"
    clone.home_fs.create("/probe", marker)
    assert clone.home_fs.read_file("/probe") == marker
    assert not env.home_fs.exists("/probe")
