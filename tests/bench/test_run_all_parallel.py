"""The parallel evaluation plane's core guarantee: ``--jobs N`` output is
byte-identical to a serial run of the same grid.

Runs the reduced Tables 1-3 + small-ablation grid once in-process and
once across two worker processes, then compares the rendered markdown
byte-for-byte and the per-table row values numerically.  The serial run
warms the module-level environment caches, so the second (forked) run is
cheap.
"""

from __future__ import annotations

import pytest

from repro.bench.run_all import build_plan, generate_body, merge_sections
from repro.parallel import TaskPool, fork_available


def _silent(*_args, **_kwargs):
    pass


@pytest.mark.skipif(not fork_available(), reason="needs fork")
def test_reduced_grid_is_byte_identical_serial_vs_jobs2():
    serial = generate_body(jobs=1, reduced=True, echo=_silent)
    parallel = generate_body(jobs=2, reduced=True, echo=_silent)
    assert parallel == serial


@pytest.mark.skipif(not fork_available(), reason="needs fork")
def test_reduced_grid_tables_match_row_for_row():
    items = build_plan(reduced=True)
    specs = [item.spec for item in items]
    serial_values = TaskPool(1).map_values(specs)
    parallel_values = TaskPool(2).map_values(specs)

    for item, s_value, p_value in zip(items, serial_values, parallel_values):
        if item.kind == "ablation":
            assert p_value == s_value, item.spec.name
            continue
        assert p_value.title == s_value.title
        assert len(p_value.rows) == len(s_value.rows), item.spec.name
        for s_row, p_row in zip(s_value.rows, p_value.rows):
            assert (p_row.label, p_row.measured, p_row.paper, p_row.unit) \
                == (s_row.label, s_row.measured, s_row.paper, s_row.unit)


def test_merge_regroups_ablation_points_in_order():
    items = build_plan(reduced=True)
    names = [item.spec.name for item in items]
    # Declaration order: the three tables, then the ablation sweeps with
    # their points contiguous (merge_sections relies on contiguity).
    assert names[:3] == ["table1", "table2", "table3"]
    sweeps = [item.sweep_key for item in items if item.kind == "ablation"]
    seen = []
    for key in sweeps:
        if not seen or seen[-1] != key:
            seen.append(key)
    assert len(seen) == len(set(sweeps)), "sweep points must be contiguous"
