"""Bench harness sanity at a tiny scale (fast versions of every table)."""

import pytest

from repro.bench import (
    build_home_env,
    format_table,
    run_concurrent_volumes,
    run_table1,
    run_table2,
    run_table3,
    run_table45,
)
from repro.bench.configs import EliotConfig
from repro.bench.report import Row, Table, to_markdown

TINY = 16000  # 1:16000 scale: ~12 MB home volume, seconds per run


@pytest.fixture(scope="module")
def tiny_env():
    return build_home_env(EliotConfig(scale=TINY, aging_rounds=1))


class TestReport:
    def test_row_ratio(self):
        assert Row("x", 2.0, 1.0).ratio == pytest.approx(2.0)
        assert Row("x", 2.0, None).ratio is None
        assert Row("x", None, 3.0).ratio is None

    def test_format_and_markdown(self):
        table = Table("demo")
        table.add("elapsed", 120.0, 100.0, unit="s")
        table.add("cpu", 0.25, 0.30, unit="%")
        text = format_table(table)
        assert "demo" in text
        assert "1.20x" in text
        markdown = to_markdown(table)
        assert markdown.startswith("### demo")
        assert "| elapsed |" in markdown

    def test_row_lookup(self):
        table = Table("demo")
        table.add("a", 1)
        assert table.row("a").measured == 1
        with pytest.raises(KeyError):
            table.row("missing")


class TestTable1:
    def test_semantics_and_verification(self):
        table, checks = run_table1()
        assert checks["incremental_matches"]
        counts = checks["counts"]
        assert all(value >= 0 for value in counts.values())
        assert table.row("incremental dump block count").ratio == 1.0


class TestBasicTables:
    def test_table2_rows_and_verification(self, tiny_env):
        table = run_table2(tiny_env)
        assert table.row("logical restore verified (diff count)").measured == 0
        assert table.row("physical restore verified (diff count)").measured == 0
        # The headline shape: physical backup is not slower than logical.
        logical = table.row("Logical Backup MBytes/second").measured
        physical = table.row("Physical Backup MBytes/second").measured
        assert physical >= logical * 0.9
        # Physical restore beats logical restore clearly.
        lr = table.row("Logical Restore MBytes/second").measured
        pr = table.row("Physical Restore MBytes/second").measured
        assert pr > lr

    def test_table3_cpu_ratios(self, tiny_env):
        table = run_table3(tiny_env)
        dump_ratio = table.row("logical/physical dump CPU ratio").measured
        restore_ratio = table.row("logical/physical restore CPU ratio").measured
        # Paper: 5x and >3x; shape check at tiny scale: clearly above 2x.
        assert dump_ratio > 2.0
        assert restore_ratio > 1.5

    def test_stage_rows_present(self, tiny_env):
        table = run_table3(tiny_env)
        labels = [row.label for row in table.rows]
        assert any("Dumping files" in label for label in labels)
        assert any("Creating snapshot" in label for label in labels)
        assert any("Filling in data" in label for label in labels)
        assert any("Restoring blocks" in label for label in labels)


class TestParallelTables:
    def test_table45_four_drives(self):
        table = run_table45(4, EliotConfig(scale=TINY, aging_rounds=1,
                                           qtrees=4))
        assert table.row("logical restore verified (diff count)").measured == 0
        assert table.row("physical restore verified (diff count)").measured == 0
        logical = table.row("Logical overall GB/hour").measured
        physical = table.row("Physical overall GB/hour").measured
        # The paper's summary shape: physical wins on 4 drives.
        assert physical > logical

    def test_invalid_drive_count(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_table45(3)

    def test_config_qtrees_must_match(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_table45(2, EliotConfig(scale=TINY, qtrees=4))


class TestConcurrentVolumes:
    def test_non_interference(self):
        table = run_concurrent_volumes(EliotConfig(scale=TINY,
                                                   aging_rounds=1))
        solo = table.row("home solo elapsed").measured
        both = table.row("home concurrent elapsed").measured
        # Paper: "did not interfere with each other at all".
        assert both < solo * 1.3
